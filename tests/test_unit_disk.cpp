// Unit tests for the unit-disk workload generator (paper's simulation
// environment: 100x100 area, calibrated range, connected topologies only).
#include "geom/unit_disk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "graph/algorithms.hpp"
#include "stats/running.hpp"

namespace manet::geom {
namespace {

TEST(PointTest, Distances) {
  const Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
}

TEST(RangeCalibrationTest, ClosedFormInverts) {
  const double r = range_for_average_degree(6.0, 50, 100.0, 100.0);
  // d = n * pi * r^2 / A.
  const double d = 50 * std::numbers::pi * r * r / (100.0 * 100.0);
  EXPECT_NEAR(d, 6.0, 1e-12);
}

TEST(RangeCalibrationTest, DenserTargetNeedsLargerRange) {
  EXPECT_GT(range_for_average_degree(18.0, 50, 100, 100),
            range_for_average_degree(6.0, 50, 100, 100));
}

TEST(RangeCalibrationTest, RejectsBadArguments) {
  EXPECT_THROW(range_for_average_degree(0.0, 50, 100, 100),
               std::invalid_argument);
  EXPECT_THROW(range_for_average_degree(6.0, 0, 100, 100),
               std::invalid_argument);
  EXPECT_THROW(range_for_average_degree(6.0, 50, 0, 100),
               std::invalid_argument);
}

TEST(UnitDiskTest, PositionsStayInArea) {
  Rng rng(1);
  const auto net = generate_unit_disk({100, 50, 60, 20.0}, rng);
  ASSERT_EQ(net.positions.size(), 60u);
  for (const auto& p : net.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 50.0);
  }
}

TEST(UnitDiskTest, EdgesMatchGeometry) {
  const std::vector<Point> pos{{0, 0}, {5, 0}, {10.5, 0}};
  const auto g = unit_disk_graph(pos, 6.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(UnitDiskTest, RangeIsExclusive) {
  const std::vector<Point> pos{{0, 0}, {10, 0}};
  EXPECT_EQ(unit_disk_graph(pos, 10.0).edge_count(), 0u);
  EXPECT_EQ(unit_disk_graph(pos, 10.0 + 1e-9).edge_count(), 1u);
}

TEST(UnitDiskTest, GeneratorIsDeterministicPerSeed) {
  Rng a(99), b(99);
  const UnitDiskConfig cfg{100, 100, 40, 25.0};
  const auto n1 = generate_unit_disk(cfg, a);
  const auto n2 = generate_unit_disk(cfg, b);
  EXPECT_EQ(n1.positions.size(), n2.positions.size());
  for (std::size_t i = 0; i < n1.positions.size(); ++i)
    EXPECT_EQ(n1.positions[i], n2.positions[i]);
  EXPECT_EQ(n1.graph.edges(), n2.graph.edges());
}

TEST(UnitDiskTest, ConnectedGeneratorYieldsConnectedGraphs) {
  Rng rng(7);
  UnitDiskConfig cfg;
  cfg.nodes = 50;
  cfg.range = range_for_average_degree(6.0, cfg.nodes, cfg.width, cfg.height);
  for (int i = 0; i < 20; ++i) {
    const auto net = generate_connected_unit_disk(cfg, rng);
    ASSERT_TRUE(net.has_value());
    EXPECT_TRUE(graph::is_connected(net->graph));
  }
}

TEST(UnitDiskTest, ImpossibleConfigReturnsNullopt) {
  Rng rng(3);
  // 50 nodes with a microscopic range cannot form a connected graph.
  UnitDiskConfig cfg{100, 100, 50, 1e-6};
  EXPECT_FALSE(generate_connected_unit_disk(cfg, rng, 10).has_value());
}

TEST(UnitDiskTest, ConnectedGeneratorReportsAttemptsUsed) {
  Rng rng(7);
  UnitDiskConfig cfg;
  cfg.nodes = 50;
  cfg.range = range_for_average_degree(6.0, cfg.nodes, cfg.width, cfg.height);
  std::size_t used = 0;
  const auto net = generate_connected_unit_disk(cfg, rng, 10000, &used);
  ASSERT_TRUE(net.has_value());
  EXPECT_GE(used, 1u);
  EXPECT_LE(used, 10000u);

  // Exhaustion reports the whole budget as spent.
  Rng rng2(3);
  UnitDiskConfig impossible{100, 100, 50, 1e-6};
  used = 0;
  EXPECT_FALSE(generate_connected_unit_disk(impossible, rng2, 7, &used)
                   .has_value());
  EXPECT_EQ(used, 7u);
}

TEST(UnitDiskTest, StreamingBuildMatchesBuilderAtScale) {
  // The counting-sweep CSR construction is a pure memory optimization:
  // same graph as the GraphBuilder path on a dense random layout, in
  // both cell-index modes.
  Rng rng(17);
  UnitDiskConfig cfg;
  cfg.nodes = 1500;
  cfg.range = range_for_average_degree(8.0, cfg.nodes, cfg.width, cfg.height);
  const auto net = generate_unit_disk(cfg, rng);
  for (const auto index : {GridIndex::kDense, GridIndex::kSparse}) {
    const auto streamed =
        unit_disk_graph_streaming(net.positions, cfg.range, index);
    EXPECT_EQ(streamed.edges(), net.graph.edges());
  }
}

TEST(UnitDiskTest, CellOrderLayoutIsIdentityOnRegrid) {
  // cell_order_layout's contract: re-gridding the permuted layout at the
  // same cell size maps node k to slot k (so downstream sweeps touch
  // memory sequentially), and the layout is a permutation of the input.
  Rng rng(19);
  UnitDiskConfig cfg;
  cfg.nodes = 700;
  cfg.range = range_for_average_degree(6.0, cfg.nodes, cfg.width, cfg.height);
  const auto net = generate_unit_disk(cfg, rng);
  for (const auto index : {GridIndex::kDense, GridIndex::kSparse}) {
    const auto layout = cell_order_layout(net.positions, cfg.range, index);
    ASSERT_EQ(layout.size(), net.positions.size());
    auto original = net.positions;
    auto permuted = layout;
    const auto lt = [](const Point& a, const Point& b) {
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    };
    std::sort(original.begin(), original.end(), lt);
    std::sort(permuted.begin(), permuted.end(), lt);
    EXPECT_EQ(original, permuted);

    const SpatialGrid regrid(layout, cfg.range, index);
    const auto slots = regrid.slots();
    for (std::size_t k = 0; k < slots.size(); ++k)
      ASSERT_EQ(slots[k], static_cast<NodeId>(k));
  }
}

TEST(UnitDiskTest, CellOrderGeneratorMatchesDrawStreamAndOrder) {
  // generate_unit_disk_cell_order's contract: (a) it places the exact
  // multiset of points generate_unit_disk draws from the same rng state,
  // (b) the caller's rng advances identically, and (c) the output is
  // sorted by row-major cell of its own lattice with draw order
  // preserved within a cell.
  Rng plain_rng(23), stream_rng(23);
  UnitDiskConfig cfg;
  cfg.nodes = 900;
  cfg.range = range_for_average_degree(6.0, cfg.nodes, cfg.width, cfg.height);
  const auto net = generate_unit_disk(cfg, plain_rng);
  const auto layout = generate_unit_disk_cell_order(cfg, stream_rng);
  ASSERT_EQ(layout.size(), net.positions.size());

  auto original = net.positions;
  auto streamed = layout;
  const auto lt = [](const Point& a, const Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  };
  std::sort(original.begin(), original.end(), lt);
  std::sort(streamed.begin(), streamed.end(), lt);
  EXPECT_EQ(original, streamed);

  // Both generators consumed the same number of draws.
  EXPECT_EQ(plain_rng(), stream_rng());

  // Cell-major: keys over the [0,width]x[0,height] lattice at cell side
  // >= range are nondecreasing along the layout.
  const auto cols = static_cast<std::size_t>(cfg.width / cfg.range);
  const auto rows = static_cast<std::size_t>(cfg.height / cfg.range);
  const auto key = [&](const Point& p) {
    const std::size_t c = std::min(
        cols - 1, static_cast<std::size_t>(
                      p.x * (static_cast<double>(cols) / cfg.width)));
    const std::size_t r = std::min(
        rows - 1, static_cast<std::size_t>(
                      p.y * (static_cast<double>(rows) / cfg.height)));
    return r * cols + c;
  };
  for (std::size_t i = 1; i < layout.size(); ++i)
    ASSERT_GE(key(layout[i]), key(layout[i - 1])) << "slot " << i;
}

TEST(UnitDiskTest, UnionFindConnectivityMatchesGraphCheck) {
  // unit_disk_connected must agree with the materialized-graph check on
  // both connected and fragmented layouts, in both index modes.
  Rng rng(29);
  UnitDiskConfig cfg;
  cfg.nodes = 300;
  for (const double degree : {2.0, 6.0, 12.0}) {
    cfg.range =
        range_for_average_degree(degree, cfg.nodes, cfg.width, cfg.height);
    for (int round = 0; round < 10; ++round) {
      const auto net = generate_unit_disk(cfg, rng);
      const bool expect = graph::is_connected(net.graph);
      for (const auto index : {GridIndex::kDense, GridIndex::kSparse})
        EXPECT_EQ(unit_disk_connected(net.positions, cfg.range, index),
                  expect)
            << "degree " << degree << " round " << round;
    }
  }
  EXPECT_TRUE(unit_disk_connected({{5.0, 5.0}}, 1.0));
  EXPECT_FALSE(unit_disk_connected({{0.0, 0.0}, {99.0, 99.0}}, 1.0));
}

TEST(UnitDiskTest, AchievedDegreeTracksCalibration) {
  // Average over many random 100x100 topologies: the realized mean degree
  // should land near the target (slightly below, due to border effects).
  Rng rng(2026);
  const std::size_t n = 80;
  UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = range_for_average_degree(6.0, n, cfg.width, cfg.height);
  stats::RunningStats deg;
  for (int i = 0; i < 60; ++i)
    deg.add(generate_unit_disk(cfg, rng).graph.average_degree());
  EXPECT_GT(deg.mean(), 6.0 * 0.70);
  EXPECT_LT(deg.mean(), 6.0 * 1.10);
}

TEST(RangeCalibrationTest, RoundTripHoldsAtScale) {
  // Round-trip property: topologies generated at the calibrated range
  // must realize the requested average degree within +-20% for n >= 500.
  // Border effects shrink with n (the in-range disk clips the area less),
  // so the tolerance is easily met at scale — and a spatial-grid bug that
  // silently changed edge density would trip this immediately.
  Rng rng(31);
  for (const std::size_t n : {500u, 1000u}) {
    for (const double target : {6.0, 18.0}) {
      UnitDiskConfig cfg;
      cfg.nodes = n;
      cfg.range = range_for_average_degree(target, n, cfg.width, cfg.height);
      stats::RunningStats deg;
      for (int i = 0; i < 5; ++i)
        deg.add(generate_unit_disk(cfg, rng).graph.average_degree());
      EXPECT_GT(deg.mean(), target * 0.8)
          << "n=" << n << " target degree " << target;
      EXPECT_LT(deg.mean(), target * 1.2)
          << "n=" << n << " target degree " << target;
    }
  }
}

}  // namespace
}  // namespace manet::geom
