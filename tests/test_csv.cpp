// Unit tests for CSV escaping and the CsvWriter.
#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace manet {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "manetcast_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvFormatTest, FormatsAllCellKinds) {
  EXPECT_EQ(csv_format(CsvCell{std::string("x")}), "x");
  EXPECT_EQ(csv_format(CsvCell{42LL}), "42");
  EXPECT_EQ(csv_format(CsvCell{2.5}), "2.5");
}

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"n", "algorithm", "size"});
    w.row({20LL, std::string("static"), 9.25});
    w.row({40LL, std::string("mo_cds"), 11.0});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path_), "n,algorithm,size\n20,static,9.25\n40,mo_cds,11\n");
}

TEST_F(CsvWriterTest, RejectsArityMismatch) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row({1LL}), std::invalid_argument);
}

TEST_F(CsvWriterTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST(CsvWriterErrorTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace manet
