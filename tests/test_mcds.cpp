// Unit + property tests for the greedy and exact CDS solvers, plus the
// empirical approximation-ratio check behind the paper's Theorem claims.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "paper_fixtures.hpp"
#include "core/mo_cds.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "mcds/exact.hpp"
#include "mcds/greedy.hpp"

namespace manet::mcds {
namespace {

TEST(GreedyCdsTest, SingletonAndEdge) {
  EXPECT_EQ(greedy_cds(graph::GraphBuilder(1).build()), (NodeSet{0}));
  const auto g = graph::make_graph(2, {{0, 1}});
  const auto cds = greedy_cds(g);
  EXPECT_EQ(cds.size(), 1u);
  EXPECT_TRUE(graph::is_connected_dominating_set(g, cds));
}

TEST(GreedyCdsTest, StarUsesOnlyCenter) {
  EXPECT_EQ(greedy_cds(graph::make_star(9)), (NodeSet{0}));
}

TEST(GreedyCdsTest, PathUsesInterior) {
  const auto g = graph::make_path(6);
  const auto cds = greedy_cds(g);
  EXPECT_TRUE(graph::is_connected_dominating_set(g, cds));
  EXPECT_LE(cds.size(), 4u);
}

TEST(GreedyCdsTest, RejectsDisconnectedOrEmpty) {
  EXPECT_THROW(greedy_cds(graph::Graph{}), std::invalid_argument);
  EXPECT_THROW(greedy_cds(graph::make_graph(3, {{0, 1}})),
               std::invalid_argument);
}

TEST(ExactMcdsTest, KnownOptima) {
  // Path of 5: optimum {1,2,3}.
  EXPECT_EQ(exact_mcds(graph::make_path(5)).size(), 3u);
  // Cycle of 6: optimum 4 (n-2).
  EXPECT_EQ(exact_mcds(graph::make_cycle(6)).size(), 4u);
  // Star: the center.
  EXPECT_EQ(exact_mcds(graph::make_star(8)), (NodeSet{0}));
  // Complete graph: any single vertex.
  EXPECT_EQ(exact_mcds(graph::make_complete(6)).size(), 1u);
  // Singleton and edge.
  EXPECT_EQ(exact_mcds(graph::GraphBuilder(1).build()), (NodeSet{0}));
  EXPECT_EQ(exact_mcds(graph::make_graph(2, {{0, 1}})).size(), 1u);
}

TEST(ExactMcdsTest, GridOptimum) {
  // 3x3 grid: centre row/column cross of 3 vertices dominates all and is
  // connected: {1,4,7} or {3,4,5} -> optimum 3.
  const auto g = graph::make_grid(3, 3);
  const auto cds = exact_mcds(g);
  EXPECT_EQ(cds.size(), 3u);
  EXPECT_TRUE(graph::is_connected_dominating_set(g, cds));
}

TEST(ExactMcdsTest, ResultIsAlwaysAValidCds) {
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    geom::UnitDiskConfig cfg;
    cfg.nodes = 14;
    cfg.range = geom::range_for_average_degree(6.0, cfg.nodes, cfg.width,
                                               cfg.height);
    const auto net = geom::generate_connected_unit_disk(cfg, rng);
    ASSERT_TRUE(net.has_value());
    const auto cds = exact_mcds(net->graph);
    EXPECT_TRUE(graph::is_connected_dominating_set(net->graph, cds));
    EXPECT_LE(cds.size(), greedy_cds(net->graph).size());
  }
}

TEST(ExactMcdsTest, SearchBudgetGuardThrows) {
  Rng rng(123);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 30;
  cfg.range =
      geom::range_for_average_degree(8.0, cfg.nodes, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  ExactOptions tiny;
  tiny.max_search_nodes = 10;
  EXPECT_THROW(exact_mcds(net->graph, tiny), std::runtime_error);
}

// ---- Approximation-ratio property: backbone vs true optimum ------------

struct RatioParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const RatioParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed);
  }
};

class ApproxRatioSweep : public ::testing::TestWithParam<RatioParam> {};

TEST_P(ApproxRatioSweep, BackbonesStayWithinConstantFactor) {
  const auto [n, d, seed] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());

  const auto opt = exact_mcds(net->graph).size();
  ASSERT_GE(opt, 1u);
  const auto st25 = core::build_static_backbone(
                        net->graph, core::CoverageMode::kTwoPointFiveHop)
                        .cds.size();
  const auto st3 =
      core::build_static_backbone(net->graph, core::CoverageMode::kThreeHop)
          .cds.size();
  const auto mo = core::build_mo_cds(net->graph).cds.size();

  // The theoretical constant for cluster-based CDSs is generous; on these
  // small instances the observed ratio stays well under 8.
  const double limit = 8.0;
  EXPECT_LE(static_cast<double>(st25), limit * static_cast<double>(opt));
  EXPECT_LE(static_cast<double>(st3), limit * static_cast<double>(opt));
  EXPECT_LE(static_cast<double>(mo), limit * static_cast<double>(opt));
  // And the exact optimum is a lower bound for everything.
  EXPECT_GE(st25, opt);
  EXPECT_GE(st3, opt);
  EXPECT_GE(mo, opt);
}

INSTANTIATE_TEST_SUITE_P(
    SmallUnitDisk, ApproxRatioSweep,
    ::testing::Values(RatioParam{12, 5, 81}, RatioParam{14, 6, 82},
                      RatioParam{16, 6, 83}, RatioParam{16, 8, 84},
                      RatioParam{18, 6, 85}, RatioParam{18, 10, 86}));

}  // namespace
}  // namespace manet::mcds
