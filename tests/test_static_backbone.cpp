// Unit + property tests for the static backbone (Theorem 1) and the
// cluster graph (Figure 4).
#include "core/static_backbone.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cluster_graph.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "paper_fixtures.hpp"

namespace manet::core {
namespace {

class Figure3Backbone : public ::testing::Test {
 protected:
  graph::Graph g_ = testing::paper_figure3_network();
  StaticBackbone b25_ =
      build_static_backbone(g_, CoverageMode::kTwoPointFiveHop);
  StaticBackbone b3_ = build_static_backbone(g_, CoverageMode::kThreeHop);
};

TEST_F(Figure3Backbone, BackboneMatchesPaperFigure3c) {
  // Paper: the SI-CDS backbone is nodes 1..9 (ours 0..8); node 10 (ours
  // 9) stays out.
  EXPECT_EQ(b25_.cds, (NodeSet{0, 1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_TRUE(b25_.in_backbone(0));
  EXPECT_FALSE(b25_.in_backbone(9));
  EXPECT_EQ(b25_.gateways, (NodeSet{4, 5, 6, 7, 8}));
}

TEST_F(Figure3Backbone, BackboneIsACds) {
  EXPECT_EQ(validate_static_backbone(g_, b25_), "");
  EXPECT_EQ(validate_static_backbone(g_, b3_), "");
  EXPECT_TRUE(graph::is_connected_dominating_set(g_, b25_.cds));
  EXPECT_TRUE(graph::is_connected_dominating_set(g_, b3_.cds));
}

TEST_F(Figure3Backbone, ClusterGraphMatchesFigure4a) {
  // 2.5-hop cluster graph (paper ids in comments): arcs 1<->2, 1<->3,
  // 2<->3, 3<->4 and the one-way 4->1.
  const auto cg = build_cluster_graph(b25_.clustering, b25_.coverage);
  ASSERT_EQ(cg.heads, (NodeSet{0, 1, 2, 3}));
  EXPECT_TRUE(cg.has_arc_between_heads(0, 1));
  EXPECT_TRUE(cg.has_arc_between_heads(1, 0));
  EXPECT_TRUE(cg.has_arc_between_heads(0, 2));
  EXPECT_TRUE(cg.has_arc_between_heads(2, 0));
  EXPECT_TRUE(cg.has_arc_between_heads(1, 2));
  EXPECT_TRUE(cg.has_arc_between_heads(2, 1));
  EXPECT_TRUE(cg.has_arc_between_heads(2, 3));
  EXPECT_TRUE(cg.has_arc_between_heads(3, 2));
  // The asymmetric pair of Figure 4 (a): 4 -> 1 but not 1 -> 4.
  EXPECT_TRUE(cg.has_arc_between_heads(3, 0));
  EXPECT_FALSE(cg.has_arc_between_heads(0, 3));
  EXPECT_TRUE(graph::is_strongly_connected(cg.digraph));
}

TEST_F(Figure3Backbone, ClusterGraphMatchesFigure4b) {
  // 3-hop coverage makes the cluster graph symmetric: 1 -> 4 appears.
  const auto cg = build_cluster_graph(b3_.clustering, b3_.coverage);
  EXPECT_TRUE(cg.has_arc_between_heads(0, 3));
  EXPECT_TRUE(cg.has_arc_between_heads(3, 0));
  for (const auto& [u, v] : cg.digraph.arcs())
    EXPECT_TRUE(cg.digraph.has_arc(v, u)) << "asymmetric arc in 3-hop G'";
}

TEST_F(Figure3Backbone, IndexOfRejectsNonHead) {
  const auto cg = build_cluster_graph(b25_.clustering, b25_.coverage);
  EXPECT_EQ(cg.index_of(2), 2u);
  EXPECT_THROW(cg.index_of(7), std::invalid_argument);
}

TEST(StaticBackboneEdgeCases, SingletonNetwork) {
  const auto g = graph::GraphBuilder(1).build();
  const auto b = build_static_backbone(g, CoverageMode::kThreeHop);
  EXPECT_EQ(b.cds, (NodeSet{0}));
  EXPECT_EQ(validate_static_backbone(g, b), "");
}

TEST(StaticBackboneEdgeCases, SingleClusterHasNoGateways) {
  const auto g = graph::make_star(8);
  const auto b = build_static_backbone(g, CoverageMode::kTwoPointFiveHop);
  EXPECT_TRUE(b.gateways.empty());
  EXPECT_EQ(b.cds, (NodeSet{0}));
}

TEST(StaticBackboneEdgeCases, PathBackboneIsWholeInterior) {
  const auto g = graph::make_path(7);
  const auto b = build_static_backbone(g, CoverageMode::kTwoPointFiveHop);
  // Heads 0,2,4,6; connectors 1,3,5 -> the CDS is the whole path.
  EXPECT_EQ(b.cds, (NodeSet{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(validate_static_backbone(g, b), "");
}

// ---- Property sweep: Theorem 1 on random unit-disk graphs --------------

struct BbParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;
  CoverageMode mode;

  friend std::ostream& operator<<(std::ostream& os, const BbParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed,
                                    core::to_string(p.mode));
  }
};

class BackboneSweep : public ::testing::TestWithParam<BbParam> {};

TEST_P(BackboneSweep, Theorem1HoldsOnRandomGraphs) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());

  const auto b = build_static_backbone(net->graph, mode);
  EXPECT_EQ(validate_static_backbone(net->graph, b), "");
  EXPECT_TRUE(graph::is_connected_dominating_set(net->graph, b.cds));

  // The Wu–Lou strong-connectivity result behind Theorem 1.
  const auto cg = build_cluster_graph(b.clustering, b.coverage);
  EXPECT_TRUE(graph::is_strongly_connected(cg.digraph));

  // Static backbone never out-sizes MO_CDS-style per-target selection by
  // construction sanity: CDS contains all heads.
  EXPECT_TRUE(is_subset(b.clustering.heads, b.cds));
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, BackboneSweep,
    ::testing::Values(
        BbParam{20, 6, 31, CoverageMode::kTwoPointFiveHop},
        BbParam{20, 6, 31, CoverageMode::kThreeHop},
        BbParam{40, 6, 32, CoverageMode::kTwoPointFiveHop},
        BbParam{40, 6, 32, CoverageMode::kThreeHop},
        BbParam{60, 18, 33, CoverageMode::kTwoPointFiveHop},
        BbParam{60, 18, 33, CoverageMode::kThreeHop},
        BbParam{80, 6, 34, CoverageMode::kTwoPointFiveHop},
        BbParam{80, 6, 34, CoverageMode::kThreeHop},
        BbParam{100, 18, 35, CoverageMode::kTwoPointFiveHop},
        BbParam{100, 18, 35, CoverageMode::kThreeHop},
        BbParam{100, 6, 36, CoverageMode::kTwoPointFiveHop},
        BbParam{100, 6, 36, CoverageMode::kThreeHop},
        BbParam{70, 12, 37, CoverageMode::kTwoPointFiveHop},
        BbParam{70, 12, 37, CoverageMode::kThreeHop}));

}  // namespace
}  // namespace manet::core
