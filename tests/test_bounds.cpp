// Tests for the MCDS lower-bound certificates.
#include "mcds/bounds.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geom/unit_disk.hpp"
#include "mcds/exact.hpp"
#include "paper_fixtures.hpp"

namespace manet::mcds {
namespace {

TEST(BoundsTest, KnownGraphs) {
  // Path of 7: Δ=2 -> domination bound ceil(7/3)=3; diameter bound
  // 6-1=5; exact MCDS = 5.
  const auto p = graph::make_path(7);
  EXPECT_EQ(domination_lower_bound(p), 3u);
  EXPECT_EQ(diameter_lower_bound(p), 5u);
  EXPECT_EQ(mcds_lower_bound(p), 5u);
  EXPECT_EQ(exact_mcds(p).size(), 5u);

  // Star: center dominates all -> both bounds give 1; exact is 1.
  const auto s = graph::make_star(9);
  EXPECT_EQ(mcds_lower_bound(s), 1u);

  // Complete graph: diam 1 -> bound 1.
  EXPECT_EQ(mcds_lower_bound(graph::make_complete(5)), 1u);

  // Singleton.
  EXPECT_EQ(mcds_lower_bound(graph::GraphBuilder(1).build()), 1u);
}

TEST(BoundsTest, CycleBoundsAreSound) {
  // Cycle of 8: Δ=2 -> ceil(8/3)=3; diam=4 -> 3; exact = 6.
  const auto c = graph::make_cycle(8);
  EXPECT_EQ(mcds_lower_bound(c), 3u);
  EXPECT_EQ(exact_mcds(c).size(), 6u);
}

TEST(BoundsTest, RejectsBadInputs) {
  EXPECT_THROW(mcds_lower_bound(graph::Graph{}), std::invalid_argument);
  EXPECT_THROW(diameter_lower_bound(graph::make_graph(3, {{0, 1}})),
               std::invalid_argument);
}

TEST(BoundsTest, NeverExceedsTheExactOptimumOnRandomGraphs) {
  Rng rng(44);
  for (int i = 0; i < 15; ++i) {
    geom::UnitDiskConfig cfg;
    cfg.nodes = 14 + static_cast<std::size_t>(i % 5);
    cfg.range = geom::range_for_average_degree(6.0, cfg.nodes, cfg.width,
                                               cfg.height);
    const auto net = geom::generate_connected_unit_disk(cfg, rng);
    ASSERT_TRUE(net.has_value());
    EXPECT_LE(mcds_lower_bound(net->graph), exact_mcds(net->graph).size());
  }
}

TEST(BoundsTest, UsableAtPaperScale) {
  // The whole point: a non-trivial certificate at n=100 where the exact
  // solver is hopeless.
  Rng rng(45);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 100;
  cfg.range = geom::range_for_average_degree(6.0, 100, cfg.width,
                                             cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  EXPECT_GE(mcds_lower_bound(net->graph), 5u);
}

}  // namespace
}  // namespace manet::mcds
