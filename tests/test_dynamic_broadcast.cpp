// Unit + property tests for the SD-CDS dynamic broadcast (Theorem 2 and
// the paper's §3 illustration).
#include "core/dynamic_broadcast.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "paper_fixtures.hpp"

namespace manet::core {
namespace {

class Figure3Dynamic : public ::testing::Test {
 protected:
  graph::Graph g_ = testing::paper_figure3_network();
  DynamicBackbone bb_ =
      build_dynamic_backbone(g_, CoverageMode::kTwoPointFiveHop);
};

TEST_F(Figure3Dynamic, PaperIllustrationSevenForwardNodes) {
  // Paper §3 illustration, source = clusterhead 1 (ours 0): "In total, 7
  // nodes (nodes 1, 2, 3, 4, 6, 7 and 9) will forward the packets."
  const auto r = dynamic_broadcast(g_, bb_, 0);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.forward_nodes, (NodeSet{0, 1, 2, 3, 5, 6, 8}));
  EXPECT_EQ(r.forward_count(), 7u);
}

TEST_F(Figure3Dynamic, SourceSelectionMatchesPaper) {
  // F(1) = {6,7} (ours {5,6}) rides on the source head's transmission.
  const auto r = dynamic_broadcast(g_, bb_, 0);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace[0].sender, 0u);
  EXPECT_EQ(r.trace[0].origin_head, 0u);
  EXPECT_EQ(r.trace[0].forward_set, (NodeSet{5, 6}));
}

TEST_F(Figure3Dynamic, Head3SelectsOnlyNode9) {
  // Paper: clusterhead 3 (ours 2) prunes C(3) down to {4} and selects
  // only node 9 (ours 8): F(3) = {9}.
  const auto r = dynamic_broadcast(g_, bb_, 0);
  for (const auto& t : r.trace) {
    if (t.sender == 2u && t.origin_head == 2u) {
      EXPECT_EQ(t.forward_set, (NodeSet{8}));
    }
  }
}

TEST_F(Figure3Dynamic, DynamicBeatsStaticOnThePaperExample) {
  // Static backbone broadcast uses all 9 backbone nodes; dynamic uses 7.
  const auto st = build_static_backbone(g_, CoverageMode::kTwoPointFiveHop);
  const auto r = dynamic_broadcast(g_, bb_, 0);
  EXPECT_EQ(st.cds.size(), 9u);
  EXPECT_LT(r.forward_count(), st.cds.size());
}

TEST_F(Figure3Dynamic, NonHeadSourceHandsOffToItsHead) {
  // Source 9 (paper 10) is a member of cluster 2: its transmission plus
  // its head's processing must still flood the network.
  const auto r = dynamic_broadcast(g_, bb_, 9);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(contains_sorted(r.forward_nodes, 9));
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace[0].sender, 9u);
  EXPECT_EQ(r.trace[0].origin_head, kInvalidNode);
}

TEST_F(Figure3Dynamic, EveryHeadForwardsExactlyOnce) {
  const auto r = dynamic_broadcast(g_, bb_, 0);
  for (NodeId h : bb_.clustering.heads) {
    int count = 0;
    for (const auto& t : r.trace)
      if (t.sender == h) ++count;
    EXPECT_EQ(count, 1) << "head " << h;
  }
}

TEST_F(Figure3Dynamic, PruningOffForwardsMore) {
  DynamicBroadcastOptions off;
  off.piggyback_pruning = false;
  off.relay_exclusion = false;
  const auto pruned = dynamic_broadcast(g_, bb_, 0);
  const auto unpruned = dynamic_broadcast(g_, bb_, 0, off);
  EXPECT_TRUE(unpruned.delivered_all);
  EXPECT_GE(unpruned.forward_count(), pruned.forward_count());
}

TEST_F(Figure3Dynamic, RejectsBadSource) {
  EXPECT_THROW(dynamic_broadcast(g_, bb_, 10), std::invalid_argument);
}

TEST(DynamicEdgeCases, SingletonNetwork) {
  const auto g = graph::GraphBuilder(1).build();
  const auto bb = build_dynamic_backbone(g, CoverageMode::kThreeHop);
  const auto r = dynamic_broadcast(g, bb, 0);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.forward_nodes, (NodeSet{0}));
}

TEST(DynamicEdgeCases, TriangleOfFigure5) {
  // Figure 5: three mutually adjacent nodes. One cluster, head 0; a
  // broadcast from any node needs at most the source + head.
  const auto g = testing::paper_figure5_triangle();
  const auto bb = build_dynamic_backbone(g, CoverageMode::kTwoPointFiveHop);
  const auto from_head = dynamic_broadcast(g, bb, 0);
  EXPECT_TRUE(from_head.delivered_all);
  EXPECT_EQ(from_head.forward_count(), 1u);
  const auto from_member = dynamic_broadcast(g, bb, 2);
  EXPECT_TRUE(from_member.delivered_all);
  EXPECT_EQ(from_member.forward_count(), 2u);  // source + its head
}

TEST(DynamicEdgeCases, PathBroadcastReachesBothEnds) {
  const auto g = graph::make_path(9);
  const auto bb = build_dynamic_backbone(g, CoverageMode::kTwoPointFiveHop);
  for (NodeId s = 0; s < 9; ++s) {
    const auto r = dynamic_broadcast(g, bb, s);
    EXPECT_TRUE(r.delivered_all) << "source " << s;
  }
}

// ---- Property sweep: delivery + dynamic <= static (Figure 8 shape) -----

struct DynParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;
  CoverageMode mode;

  friend std::ostream& operator<<(std::ostream& os, const DynParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed,
                                    core::to_string(p.mode));
  }
};

class DynamicSweep : public ::testing::TestWithParam<DynParam> {};

TEST_P(DynamicSweep, FullDeliveryFromEverySource) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto bb = build_dynamic_backbone(net->graph, mode);
  for (NodeId s = 0; s < net->graph.order(); ++s) {
    const auto r = dynamic_broadcast(net->graph, bb, s);
    ASSERT_TRUE(r.delivered_all) << "source " << s;
    // All heads forward; forward count at least covers the heads.
    EXPECT_GE(r.forward_count(), bb.clustering.heads.size());
  }
}

TEST_P(DynamicSweep, PruningVariantsAllDeliver) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed + 1000);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto bb = build_dynamic_backbone(net->graph, mode);
  for (int variant = 0; variant < 4; ++variant) {
    DynamicBroadcastOptions opt;
    opt.piggyback_pruning = (variant & 1) != 0;
    opt.relay_exclusion = (variant & 2) != 0;
    const auto r = dynamic_broadcast(net->graph, bb, 0, opt);
    EXPECT_TRUE(r.delivered_all) << "variant " << variant;
  }
}

TEST_P(DynamicSweep, DynamicForwardSetWithinStaticBackbonePlusSource) {
  // Dynamic gateways are drawn per-broadcast, so the forward set is not
  // literally a subset of the static CDS, but its *size* must not exceed
  // the static broadcast's forward count (Figure 8's claim), modulo the
  // non-head source handoff (+1).
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed + 2000);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto c = cluster::lowest_id_clustering(net->graph);
  const auto st = build_static_backbone(net->graph, c, mode);
  const auto bb = build_dynamic_backbone(net->graph, c, mode);
  Rng pick(seed);
  for (int i = 0; i < 5; ++i) {
    const auto s = static_cast<NodeId>(pick.index(net->graph.order()));
    const auto r = dynamic_broadcast(net->graph, bb, s);
    EXPECT_LE(r.forward_count(), st.cds.size() + 1) << "source " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, DynamicSweep,
    ::testing::Values(
        DynParam{20, 6, 51, CoverageMode::kTwoPointFiveHop},
        DynParam{20, 6, 51, CoverageMode::kThreeHop},
        DynParam{40, 6, 52, CoverageMode::kTwoPointFiveHop},
        DynParam{40, 6, 52, CoverageMode::kThreeHop},
        DynParam{60, 18, 53, CoverageMode::kTwoPointFiveHop},
        DynParam{60, 18, 53, CoverageMode::kThreeHop},
        DynParam{80, 6, 54, CoverageMode::kTwoPointFiveHop},
        DynParam{80, 6, 54, CoverageMode::kThreeHop},
        DynParam{100, 18, 55, CoverageMode::kTwoPointFiveHop},
        DynParam{100, 18, 55, CoverageMode::kThreeHop},
        DynParam{100, 6, 56, CoverageMode::kTwoPointFiveHop},
        DynParam{100, 6, 56, CoverageMode::kThreeHop}));

}  // namespace
}  // namespace manet::core
