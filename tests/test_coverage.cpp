// Unit + property tests for coverage sets (paper §1/§3, Figure 1).
#include "core/coverage.hpp"

#include <gtest/gtest.h>

#include "core/table_kernels.hpp"

#include "common/rng.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "paper_fixtures.hpp"

namespace manet::core {
namespace {

class Figure3Coverage : public ::testing::Test {
 protected:
  graph::Graph g_ = testing::paper_figure3_network();
  cluster::Clustering c_ = cluster::lowest_id_clustering(g_);
  NeighborTables t25_ =
      build_neighbor_tables(g_, c_, CoverageMode::kTwoPointFiveHop);
  NeighborTables t3_ = build_neighbor_tables(g_, c_, CoverageMode::kThreeHop);
};

TEST_F(Figure3Coverage, TwoPointFiveHopMatchesPaper) {
  // Paper: C(1)={2,3}, C(2)={1,3}, C(3)={1,2,4}, C(4)={3} ∪ {1}.
  const auto cov = build_all_coverage(g_, c_, t25_);
  EXPECT_EQ(cov[0].two_hop, (NodeSet{1, 2}));
  EXPECT_TRUE(cov[0].three_hop.empty());
  EXPECT_EQ(cov[1].two_hop, (NodeSet{0, 2}));
  EXPECT_TRUE(cov[1].three_hop.empty());
  EXPECT_EQ(cov[2].two_hop, (NodeSet{0, 1, 3}));
  EXPECT_TRUE(cov[2].three_hop.empty());
  EXPECT_EQ(cov[3].two_hop, (NodeSet{2}));
  EXPECT_EQ(cov[3].three_hop, (NodeSet{0}));
}

TEST_F(Figure3Coverage, ThreeHopAddsTheFigure1Case) {
  // With the 3-hop coverage set, head 0 also covers head 3 (distance 3
  // but no member of 3 inside N^2(0)) — the distinction Figure 1
  // illustrates with clusterhead c'.
  const auto cov25 = build_all_coverage(g_, c_, t25_);
  const auto cov3 = build_all_coverage(g_, c_, t3_);
  EXPECT_TRUE(cov25[0].three_hop.empty());
  EXPECT_EQ(cov3[0].three_hop, (NodeSet{3}));
  // 2.5-hop coverage is never larger than 3-hop coverage.
  for (NodeId h : c_.heads) {
    EXPECT_EQ(cov25[h].two_hop, cov3[h].two_hop);
    EXPECT_TRUE(is_subset(cov25[h].three_hop, cov3[h].three_hop));
  }
}

TEST_F(Figure3Coverage, AllAndSizeHelpers) {
  const auto cov = build_coverage(g_, c_, t25_, 3);
  EXPECT_EQ(cov.all(), (NodeSet{0, 2}));
  EXPECT_EQ(cov.size(), 2u);
  EXPECT_FALSE(cov.empty());
  EXPECT_TRUE(Coverage{}.empty());
}

TEST_F(Figure3Coverage, ValidatesAgainstGroundTruth) {
  for (NodeId h : c_.heads) {
    EXPECT_EQ(validate_coverage(g_, c_, t25_, h,
                                build_coverage(g_, c_, t25_, h)),
              "");
    EXPECT_EQ(validate_coverage(g_, c_, t3_, h,
                                build_coverage(g_, c_, t3_, h)),
              "");
  }
}

TEST_F(Figure3Coverage, ValidateDetectsCorruption) {
  auto cov = build_coverage(g_, c_, t25_, 0);
  cov.two_hop.pop_back();
  EXPECT_NE(validate_coverage(g_, c_, t25_, 0, cov), "");
}

TEST_F(Figure3Coverage, RejectsNonHead) {
  EXPECT_THROW(build_coverage(g_, c_, t25_, 4), std::invalid_argument);
}

TEST(CoverageEdgeCases, IsolatedClusterHasEmptyCoverage) {
  const auto g = graph::make_star(5);
  const auto c = cluster::lowest_id_clustering(g);
  const auto t = build_neighbor_tables(g, c, CoverageMode::kThreeHop);
  const auto cov = build_coverage(g, c, t, 0);
  EXPECT_TRUE(cov.empty());
}

TEST(CoverageEdgeCases, PathCoverageChains) {
  // Path 0..8 clusters at heads 0,2,4,6,8; C2 of interior heads holds
  // both neighbors' heads, C3 nothing (all heads are 2 apart).
  const auto g = graph::make_path(9);
  const auto c = cluster::lowest_id_clustering(g);
  const auto t = build_neighbor_tables(g, c, CoverageMode::kThreeHop);
  const auto cov = build_all_coverage(g, c, t);
  EXPECT_EQ(cov[4].two_hop, (NodeSet{2, 6}));
  EXPECT_TRUE(cov[4].three_hop.empty());
  EXPECT_EQ(cov[0].two_hop, (NodeSet{2}));
}

TEST(CoverageEdgeCases, LongPathGetsThreeHopEntries) {
  // Path 0-1-2-3-4-5-6 with ids arranged so heads are 3 hops apart:
  // relabel via explicit edges 0-2-4-1-5-3-6 (a path in that visit
  // order). Heads: 0; 1? neighbors {4,5}: no smaller head adjacent -> 1
  // is head; 3: neighbors {5,6} -> head. dist(0,1): 0-2? path edges:
  // (0,2),(2,4),(4,1),(1,5),(5,3),(3,6). dist(0,1)=3.
  const auto g = graph::make_graph(
      7, {{0, 2}, {2, 4}, {4, 1}, {1, 5}, {5, 3}, {3, 6}});
  const auto c = cluster::lowest_id_clustering(g);
  ASSERT_EQ(c.heads, (NodeSet{0, 1, 3}));
  const auto t25 =
      build_neighbor_tables(g, c, CoverageMode::kTwoPointFiveHop);
  const auto cov = build_all_coverage(g, c, t25);
  // Head 1 has a member (4) in N^2(0), so 1 is in 0's 2.5-hop coverage.
  EXPECT_EQ(cov[0].three_hop, (NodeSet{1}));
  EXPECT_EQ(validate_coverage(g, c, t25, 0, cov[0]), "");
}

TEST(CoverageScratchTest, ScratchKernelMatchesScratchlessAndComesBackClean) {
  // The reusable-scratch coverage_row must be bit-identical to the
  // scratch-less overload and must return its bitsets fully cleared, or
  // the next head computed with the same scratch inherits stale bits.
  Rng rng(99);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 120;
  cfg.range = geom::range_for_average_degree(8, 120, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto c = cluster::lowest_id_clustering(net->graph);
  for (const auto mode :
       {CoverageMode::kTwoPointFiveHop, CoverageMode::kThreeHop}) {
    const auto t = build_neighbor_tables(net->graph, c, mode);
    CoverageScratch scratch;  // deliberately shared across all heads
    for (NodeId h : c.heads) {
      const Coverage with_scratch =
          coverage_row(net->graph, t, h, cfg.nodes, scratch);
      const Coverage fresh = coverage_row(net->graph, t, h, cfg.nodes);
      EXPECT_EQ(with_scratch.two_hop, fresh.two_hop) << "head " << h;
      EXPECT_EQ(with_scratch.three_hop, fresh.three_hop) << "head " << h;
      for (std::size_t v = 0; v < cfg.nodes; ++v) {
        ASSERT_FALSE(scratch.two.test(static_cast<NodeId>(v)))
            << "stale two-hop bit " << v << " after head " << h;
        ASSERT_FALSE(scratch.three.test(static_cast<NodeId>(v)))
            << "stale three-hop bit " << v << " after head " << h;
      }
    }
  }
}

// ---- Property sweep: message-built coverage equals BFS ground truth ----

struct CovParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;
  CoverageMode mode;

  friend std::ostream& operator<<(std::ostream& os, const CovParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed,
                                    core::to_string(p.mode));
  }
};

class CoverageSweep : public ::testing::TestWithParam<CovParam> {};

TEST_P(CoverageSweep, MatchesGroundTruthDefinition) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto c = cluster::lowest_id_clustering(net->graph);
  const auto t = build_neighbor_tables(net->graph, c, mode);
  for (NodeId h : c.heads) {
    const auto cov = build_coverage(net->graph, c, t, h);
    EXPECT_EQ(validate_coverage(net->graph, c, t, h, cov), "")
        << "head " << h;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, CoverageSweep,
    ::testing::Values(
        CovParam{20, 6, 1, CoverageMode::kTwoPointFiveHop},
        CovParam{20, 6, 1, CoverageMode::kThreeHop},
        CovParam{40, 6, 2, CoverageMode::kTwoPointFiveHop},
        CovParam{40, 6, 2, CoverageMode::kThreeHop},
        CovParam{60, 18, 3, CoverageMode::kTwoPointFiveHop},
        CovParam{60, 18, 3, CoverageMode::kThreeHop},
        CovParam{80, 6, 4, CoverageMode::kTwoPointFiveHop},
        CovParam{80, 6, 4, CoverageMode::kThreeHop},
        CovParam{100, 18, 5, CoverageMode::kTwoPointFiveHop},
        CovParam{100, 18, 5, CoverageMode::kThreeHop},
        CovParam{100, 6, 6, CoverageMode::kTwoPointFiveHop},
        CovParam{100, 6, 6, CoverageMode::kThreeHop},
        CovParam{50, 12, 7, CoverageMode::kTwoPointFiveHop},
        CovParam{50, 12, 7, CoverageMode::kThreeHop}));

}  // namespace
}  // namespace manet::core
