// Unit + property tests for the MO_CDS baseline (Alzoubi et al.), and the
// size relation to the static backbone reported in the paper's Figure 6.
#include "core/mo_cds.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "paper_fixtures.hpp"
#include "stats/running.hpp"

namespace manet::core {
namespace {

TEST(MoCdsTest, Figure3NetworkProducesACds) {
  const auto g = testing::paper_figure3_network();
  const auto mo = build_mo_cds(g);
  EXPECT_EQ(validate_mo_cds(g, mo), "");
  EXPECT_TRUE(graph::is_connected_dominating_set(g, mo.cds));
  EXPECT_EQ(mo.clustering.heads, (NodeSet{0, 1, 2, 3}));
  EXPECT_TRUE(is_subset(mo.clustering.heads, mo.cds));
}

TEST(MoCdsTest, UsesThreeHopCoverage) {
  // Head 0's coverage in MO_CDS includes the 3-hop head 3, so a pair of
  // connectors toward it must be selected (4 and 8).
  const auto g = testing::paper_figure3_network();
  const auto mo = build_mo_cds(g);
  EXPECT_EQ(mo.coverage[0].three_hop, (NodeSet{3}));
  EXPECT_TRUE(contains_sorted(mo.connectors, 4));
  EXPECT_TRUE(contains_sorted(mo.connectors, 8));
}

TEST(MoCdsTest, SingleClusterNoConnectors) {
  const auto g = graph::make_star(6);
  const auto mo = build_mo_cds(g);
  EXPECT_TRUE(mo.connectors.empty());
  EXPECT_EQ(mo.cds, (NodeSet{0}));
}

TEST(MoCdsTest, PathSelectsEveryInterior) {
  const auto g = graph::make_path(7);
  const auto mo = build_mo_cds(g);
  EXPECT_EQ(mo.cds, (NodeSet{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(validate_mo_cds(g, mo), "");
}

TEST(MoCdsTest, PerTargetSelectionNeverBeatsGreedy) {
  // Construct a topology where one gateway reaches two heads: the greedy
  // static backbone shares it, MO_CDS picks per-target but the smallest-id
  // neighbor rule happens to also share. Then verify |static| <= |MO| on
  // the instance where sharing matters (node 1 reaches heads 5 and 6;
  // node 2 reaches 6 and 7).
  const auto g = graph::make_graph(
      8, {{0, 1}, {0, 2}, {1, 5}, {1, 6}, {2, 6}, {2, 7}});
  const auto st = build_static_backbone(g, CoverageMode::kThreeHop);
  const auto mo = build_mo_cds(g);
  EXPECT_LE(st.cds.size(), mo.cds.size());
}

// ---- Property sweep: MO_CDS validity + Figure 6 size relation ----------

struct MoParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const MoParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed);
  }
};

class MoCdsSweep : public ::testing::TestWithParam<MoParam> {};

TEST_P(MoCdsSweep, ValidCdsOnRandomGraphs) {
  const auto [n, d, seed] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto mo = build_mo_cds(net->graph);
  EXPECT_EQ(validate_mo_cds(net->graph, mo), "");
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, MoCdsSweep,
    ::testing::Values(MoParam{20, 6, 41}, MoParam{40, 6, 42},
                      MoParam{60, 6, 43}, MoParam{80, 18, 44},
                      MoParam{100, 18, 45}, MoParam{100, 6, 46},
                      MoParam{50, 12, 47}, MoParam{30, 18, 48}));

TEST(MoCdsFigure6Shape, StaticBackboneIsNoWorseOnAverage) {
  // Figure 6's qualitative claim: static backbone and MO_CDS have similar
  // CDS sizes, with the static backbone slightly smaller. Check the
  // averaged relation over a few dozen random networks.
  Rng rng(2003);
  stats::RunningStats static_size, mo_size;
  for (int i = 0; i < 40; ++i) {
    geom::UnitDiskConfig cfg;
    cfg.nodes = 60;
    cfg.range = geom::range_for_average_degree(6.0, cfg.nodes, cfg.width,
                                               cfg.height);
    const auto net = geom::generate_connected_unit_disk(cfg, rng);
    ASSERT_TRUE(net.has_value());
    const auto c = cluster::lowest_id_clustering(net->graph);
    static_size.add(static_cast<double>(
        build_static_backbone(net->graph, c, CoverageMode::kThreeHop)
            .cds.size()));
    mo_size.add(static_cast<double>(build_mo_cds(net->graph, c).cds.size()));
  }
  EXPECT_LE(static_size.mean(), mo_size.mean() * 1.02);
}

}  // namespace
}  // namespace manet::core
