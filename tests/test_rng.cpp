// Unit tests for the deterministic RNG.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace manet {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(RngTest, BelowHitsAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BetweenInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanIsAboutHalf) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(10.0, 20.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyMoves) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DeriveSeedSpreadsReplications) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t rep = 0; rep < 1000; ++rep)
    seeds.insert(derive_seed(12345, rep, 0));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(RngTest, DeriveSeedSeparatesStreams) {
  EXPECT_NE(derive_seed(1, 1, 0), derive_seed(1, 1, 1));
  EXPECT_NE(derive_seed(1, 1, 0), derive_seed(2, 1, 0));
}

}  // namespace
}  // namespace manet
