// Unit + property tests for Least Cluster Change maintenance.
#include "cluster/lcc.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "paper_fixtures.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "mobility/waypoint.hpp"

namespace manet::cluster {
namespace {

TEST(LccTest, NoTopologyChangeNoChurn) {
  const auto g = graph::make_path(7);
  const auto c = lowest_id_clustering(g);
  LccDelta delta;
  const auto repaired = lcc_update(g, c, &delta);
  EXPECT_EQ(delta.total(), 0u);
  EXPECT_EQ(repaired.heads, c.heads);
  EXPECT_EQ(repaired.head_of, c.head_of);
}

TEST(LccTest, AdjacentHeadsLargerResigns) {
  // Heads 0 and 2 of the path 0-1-2-3 collide when edge 0-2 appears.
  const auto before = graph::make_path(4);
  auto c = lowest_id_clustering(before);
  ASSERT_EQ(c.heads, (NodeSet{0, 2}));
  const auto after =
      graph::make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  LccDelta delta;
  const auto repaired = lcc_update(after, c, &delta);
  EXPECT_EQ(delta.heads_resigned, 1u);
  EXPECT_TRUE(repaired.is_head(0));
  EXPECT_FALSE(repaired.is_head(2));
  EXPECT_EQ(repaired.head_of[2], 0u);  // ex-head joins the survivor
  EXPECT_EQ(validate_cluster_structure(after, repaired), "");
}

TEST(LccTest, StrandedMemberDeclaresItself) {
  // Node 3 loses its link to head 0 and has no other head around.
  const auto before = graph::make_star(4);
  const auto c = lowest_id_clustering(before);
  const auto after = graph::make_graph(4, {{0, 1}, {0, 2}});  // 3 isolated
  LccDelta delta;
  const auto repaired = lcc_update(after, c, &delta);
  EXPECT_EQ(delta.heads_declared, 1u);
  EXPECT_TRUE(repaired.is_head(3));
  EXPECT_EQ(validate_cluster_structure(after, repaired), "");
}

TEST(LccTest, StrandedMemberJoinsNeighboringHead) {
  // 3 was in 0's cluster; after moving it only reaches head 2's member…
  // make it reach head 2 directly.
  const auto before = graph::make_graph(4, {{0, 3}, {0, 1}, {2, 1}});
  const auto c = lowest_id_clustering(before);
  ASSERT_EQ(c.heads, (NodeSet{0, 2}));
  ASSERT_EQ(c.head_of[3], 0u);
  const auto after = graph::make_graph(4, {{0, 1}, {2, 1}, {2, 3}});
  LccDelta delta;
  const auto repaired = lcc_update(after, c, &delta);
  EXPECT_EQ(delta.reaffiliations, 1u);
  EXPECT_EQ(repaired.head_of[3], 2u);
  EXPECT_EQ(validate_cluster_structure(after, repaired), "");
}

TEST(LccTest, DoesNotChaseSmallerHeads) {
  // The "least change" property: when node 1 loses its head and declares
  // itself next to 2's member 4, node 4 stays with head 2. Full lowest-ID
  // re-clustering would instead hand 4 to the smaller head 1 — a ripple
  // LCC avoids.
  const auto before = graph::make_graph(5, {{2, 3}, {2, 4}, {0, 1}});
  const auto c = lowest_id_clustering(before);
  ASSERT_TRUE(c.is_head(2));
  ASSERT_EQ(c.head_of[4], 2u);
  ASSERT_EQ(c.head_of[1], 0u);
  const auto after = graph::make_graph(5, {{2, 3}, {2, 4}, {1, 4}});
  LccDelta delta;
  const auto repaired = lcc_update(after, c, &delta);
  EXPECT_EQ(delta.heads_declared, 1u);  // stranded node 1 declares
  EXPECT_EQ(delta.reaffiliations, 0u);  // ...but 4 does not defect
  EXPECT_TRUE(repaired.is_head(1));
  EXPECT_EQ(repaired.head_of[4], 2u);
  EXPECT_EQ(validate_cluster_structure(after, repaired), "");
  // Full re-clustering hands 4 to the smaller head 1.
  const auto full = lowest_id_clustering(after);
  EXPECT_EQ(full.head_of[4], 1u);
  EXPECT_NE(full.head_of, repaired.head_of);
}

TEST(LccTest, RejectsMismatchedSizes) {
  const auto g = graph::make_path(4);
  const auto c = lowest_id_clustering(graph::make_path(3));
  EXPECT_THROW(lcc_update(g, c), std::invalid_argument);
}

TEST(LccTest, ValidateCatchesBrokenStructures) {
  const auto g = graph::make_path(5);
  auto c = lowest_id_clustering(g);
  EXPECT_EQ(validate_cluster_structure(g, c), "");
  auto broken = c;
  broken.head_of[1] = 4;
  EXPECT_NE(validate_cluster_structure(g, broken), "");
}

// ---- Property sweep: LCC under sustained mobility -----------------------

struct LccParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const LccParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed);
  }
};

class LccMobilitySweep : public ::testing::TestWithParam<LccParam> {};

TEST_P(LccMobilitySweep, StructureStaysValidAndChurnsLessThanRebuild) {
  const auto [n, d, seed] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());

  mobility::WaypointConfig wcfg;
  wcfg.min_speed = 1.0;
  wcfg.max_speed = 3.0;
  mobility::WaypointModel model(net->positions, wcfg, Rng(seed + 1));

  auto lcc = lowest_id_clustering(net->graph);
  std::size_t lcc_head_changes = 0, full_head_changes = 0;
  auto prev_full = lcc;
  auto prev_lcc_head_of = lcc.head_of;
  for (int step = 0; step < 12; ++step) {
    model.step(1.0);
    const auto snapshot = model.snapshot(cfg.range);
    // LCC repair keeps a valid structure...
    lcc = lcc_update(snapshot, lcc);
    ASSERT_EQ(validate_cluster_structure(snapshot, lcc), "")
        << "step " << step;
    // ...and the backbone machinery still produces a CDS on top of it
    // when the snapshot is connected.
    if (graph::is_connected(snapshot)) {
      const auto backbone = core::build_static_backbone(
          snapshot, lcc, core::CoverageMode::kTwoPointFiveHop);
      EXPECT_EQ(validate_static_backbone(snapshot, backbone), "")
          << "step " << step;
    }
    // Churn bookkeeping vs full re-clustering.
    const auto full = lowest_id_clustering(snapshot);
    for (NodeId v = 0; v < snapshot.order(); ++v) {
      if (lcc.head_of[v] != prev_lcc_head_of[v]) ++lcc_head_changes;
      if (full.head_of[v] != prev_full.head_of[v]) ++full_head_changes;
    }
    prev_lcc_head_of = lcc.head_of;
    prev_full = full;
  }
  EXPECT_LE(lcc_head_changes, full_head_changes);
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, LccMobilitySweep,
    ::testing::Values(LccParam{30, 8, 111}, LccParam{50, 8, 112},
                      LccParam{50, 14, 113}, LccParam{70, 10, 114},
                      LccParam{40, 18, 115}, LccParam{60, 6, 116}));

}  // namespace
}  // namespace manet::cluster
