// Unit + property tests for the Wu–Li marking process with Rules 1 & 2.
#include "mcds/wu_li.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "paper_fixtures.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"

namespace manet::mcds {
namespace {

TEST(WuLiTest, CompleteGraphFallsBackToSingleton) {
  const auto g = graph::make_complete(5);
  EXPECT_EQ(wu_li_marked(g), (NodeSet{0}));
  EXPECT_EQ(wu_li_cds(g), (NodeSet{0}));
}

TEST(WuLiTest, PathMarksTheInterior) {
  const auto g = graph::make_path(5);
  // Interior nodes have two non-adjacent neighbors; endpoints do not.
  EXPECT_EQ(wu_li_marked(g), (NodeSet{1, 2, 3}));
  EXPECT_EQ(wu_li_cds(g), (NodeSet{1, 2, 3}));
}

TEST(WuLiTest, StarMarksOnlyTheCenter) {
  const auto g = graph::make_star(7);
  EXPECT_EQ(wu_li_cds(g), (NodeSet{0}));
}

TEST(WuLiTest, Rule1PrunesDominatedNeighborhoods) {
  // Nodes 0 and 1 adjacent with N[0] ⊆ N[1]: 1 is adjacent to everything
  // 0 is plus node 4. Both get marked; Rule 1 unmarks 0 (smaller id).
  const auto g = graph::make_graph(
      5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}});
  const auto marked = wu_li_marked(g);
  ASSERT_TRUE(contains_sorted(marked, 0));
  ASSERT_TRUE(contains_sorted(marked, 1));
  WuLiOptions rule1_only;
  rule1_only.rule2 = false;
  const auto cds = wu_li_cds(g, rule1_only);
  EXPECT_FALSE(contains_sorted(cds, 0));
  EXPECT_TRUE(contains_sorted(cds, 1));
  EXPECT_TRUE(graph::is_connected_dominating_set(g, cds));
}

TEST(WuLiTest, EqualNeighborhoodsKeepTheLargerId) {
  // K4 minus the 2-3 edge: N(0) and N(1) both see the non-adjacent pair
  // (2,3), so 0 and 1 are marked; N[0] = N[1], so Rule 1's id tie-break
  // unmarks exactly the smaller one.
  const auto g =
      graph::make_graph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
  EXPECT_EQ(wu_li_marked(g), (NodeSet{0, 1}));
  const auto cds = wu_li_cds(g);
  EXPECT_EQ(cds, (NodeSet{1}));
  EXPECT_TRUE(graph::is_connected_dominating_set(g, cds));
}

TEST(WuLiTest, RulesNeverBreakTheCds) {
  // A ladder where Rule 2 fires: two hub nodes 4,5 covering a ring.
  const auto g = graph::make_graph(
      6, {{0, 4}, {1, 4}, {2, 5}, {3, 5}, {4, 5}, {0, 1}, {2, 3}});
  const auto cds = wu_li_cds(g);
  EXPECT_TRUE(graph::is_connected_dominating_set(g, cds));
  const auto marked = wu_li_marked(g);
  EXPECT_TRUE(is_subset(cds, marked));
}

TEST(WuLiTest, RejectsBadInputs) {
  EXPECT_THROW(wu_li_cds(graph::Graph{}), std::invalid_argument);
  EXPECT_THROW(wu_li_cds(graph::make_graph(3, {{0, 1}})),
               std::invalid_argument);
}

// ---- Property sweep -----------------------------------------------------

struct WuLiParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const WuLiParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed);
  }
};

class WuLiSweep : public ::testing::TestWithParam<WuLiParam> {};

TEST_P(WuLiSweep, AlwaysACdsAndRulesOnlyShrink) {
  const auto [n, d, seed] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());

  const auto marked = wu_li_marked(net->graph);
  EXPECT_TRUE(graph::is_connected_dominating_set(net->graph, marked));

  WuLiOptions no_rules{false, false};
  WuLiOptions rule1_only{true, false};
  WuLiOptions both{true, true};
  const auto cds_marked = wu_li_cds(net->graph, no_rules);
  const auto cds_r1 = wu_li_cds(net->graph, rule1_only);
  const auto cds_both = wu_li_cds(net->graph, both);
  EXPECT_EQ(cds_marked, marked);
  EXPECT_LE(cds_r1.size(), cds_marked.size());
  EXPECT_LE(cds_both.size(), cds_r1.size());
  EXPECT_TRUE(graph::is_connected_dominating_set(net->graph, cds_r1));
  EXPECT_TRUE(graph::is_connected_dominating_set(net->graph, cds_both));
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, WuLiSweep,
    ::testing::Values(WuLiParam{20, 6, 91}, WuLiParam{40, 6, 92},
                      WuLiParam{60, 6, 93}, WuLiParam{40, 18, 94},
                      WuLiParam{80, 18, 95}, WuLiParam{100, 6, 96},
                      WuLiParam{100, 18, 97}, WuLiParam{60, 12, 98}));

}  // namespace
}  // namespace manet::mcds
