// Reproducibility guarantees: identical seeds produce bit-identical
// results across the whole pipeline — the property the README promises
// and every EXPERIMENTS.md number relies on.
#include <gtest/gtest.h>

#include "core/dynamic_broadcast.hpp"
#include "core/static_backbone.hpp"
#include "exp/figures.hpp"
#include "net/protocol.hpp"

namespace manet::exp {
namespace {

stats::ReplicationPolicy tiny_policy() {
  stats::ReplicationPolicy p;
  p.min_replications = 5;
  p.max_replications = 10;
  return p;
}

PaperScenario tiny_scenario() {
  PaperScenario s;
  s.sizes = {20, 40};
  s.degrees = {6.0};
  return s;
}

TEST(DeterminismTest, Fig6RowsIdenticalAcrossRuns) {
  const auto a = run_fig6(tiny_scenario(), tiny_policy(), 777);
  const auto b = run_fig6(tiny_scenario(), tiny_policy(), 777);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].replications, b[i].replications);
    EXPECT_EQ(a[i].static_25.mean, b[i].static_25.mean);
    EXPECT_EQ(a[i].static_3.mean, b[i].static_3.mean);
    EXPECT_EQ(a[i].mo_cds.mean, b[i].mo_cds.mean);
  }
}

TEST(DeterminismTest, Fig7And8RowsIdenticalAcrossRuns) {
  const auto a7 = run_fig7(tiny_scenario(), tiny_policy(), 778);
  const auto b7 = run_fig7(tiny_scenario(), tiny_policy(), 778);
  ASSERT_EQ(a7.size(), b7.size());
  for (std::size_t i = 0; i < a7.size(); ++i)
    EXPECT_EQ(a7[i].dynamic_25.mean, b7[i].dynamic_25.mean);

  const auto a8 = run_fig8(tiny_scenario(), tiny_policy(), 779);
  const auto b8 = run_fig8(tiny_scenario(), tiny_policy(), 779);
  ASSERT_EQ(a8.size(), b8.size());
  for (std::size_t i = 0; i < a8.size(); ++i) {
    EXPECT_EQ(a8[i].static_25.mean, b8[i].static_25.mean);
    EXPECT_EQ(a8[i].dynamic_3.mean, b8[i].dynamic_3.mean);
  }
}

TEST(DeterminismTest, DifferentSeedsDiffer) {
  const auto a = run_fig6(tiny_scenario(), tiny_policy(), 1);
  const auto b = run_fig6(tiny_scenario(), tiny_policy(), 2);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].static_25.mean != b[i].static_25.mean) any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(DeterminismTest, WholePipelineIsPure) {
  // Building the backbone twice on the same graph yields identical
  // structures (no hidden global state anywhere in the pipeline).
  const PaperScenario s = tiny_scenario();
  const auto net = make_network(s, {40, 6.0}, 99, 0);
  const auto b1 = core::build_static_backbone(
      net.graph, core::CoverageMode::kTwoPointFiveHop);
  const auto b2 = core::build_static_backbone(
      net.graph, core::CoverageMode::kTwoPointFiveHop);
  EXPECT_EQ(b1.cds, b2.cds);
  EXPECT_EQ(b1.gateways, b2.gateways);

  const auto bb = core::build_dynamic_backbone(
      net.graph, b1.clustering, core::CoverageMode::kTwoPointFiveHop);
  const auto r1 = core::dynamic_broadcast(net.graph, bb, 5);
  const auto r2 = core::dynamic_broadcast(net.graph, bb, 5);
  EXPECT_EQ(r1.forward_nodes, r2.forward_nodes);

  const auto d1 = net::run_distributed_backbone(
      net.graph, core::CoverageMode::kTwoPointFiveHop);
  const auto d2 = net::run_distributed_backbone(
      net.graph, core::CoverageMode::kTwoPointFiveHop);
  EXPECT_EQ(d1.backbone, d2.backbone);
  EXPECT_EQ(d1.counts.total(), d2.counts.total());
  EXPECT_EQ(d1.rounds, d2.rounds);
}

}  // namespace
}  // namespace manet::exp
