// Integration tests: the message-driven distributed protocol must produce
// exactly the centralized pipeline's results, with O(n) messages.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "paper_fixtures.hpp"

namespace manet::net {
namespace {

using core::CoverageMode;

TEST(NetProtocolTest, Figure3ClusteringEmerges) {
  const auto g = testing::paper_figure3_network();
  const auto run =
      run_distributed_backbone(g, CoverageMode::kTwoPointFiveHop);
  EXPECT_EQ(run.clustering.heads, (NodeSet{0, 1, 2, 3}));
  EXPECT_EQ(run.clustering.head_of[7], 1u);
  EXPECT_EQ(run.clustering.head_of[8], 2u);
}

TEST(NetProtocolTest, Figure3BackboneEmerges) {
  const auto g = testing::paper_figure3_network();
  const auto run =
      run_distributed_backbone(g, CoverageMode::kTwoPointFiveHop);
  // GATEWAY dissemination ends with the paper's backbone: nodes 1..9
  // (ours 0..8).
  EXPECT_EQ(run.backbone, (NodeSet{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(NetProtocolTest, Figure3MessageBreakdown) {
  const auto g = testing::paper_figure3_network();
  const auto run =
      run_distributed_backbone(g, CoverageMode::kTwoPointFiveHop);
  // One HELLO and one role announcement per node; one CH_HOP1 and one
  // CH_HOP2 per non-head.
  EXPECT_EQ(run.counts.hello, 10u);
  EXPECT_EQ(run.counts.cluster_head + run.counts.non_cluster_head, 10u);
  EXPECT_EQ(run.counts.cluster_head, 4u);
  EXPECT_EQ(run.counts.ch_hop1, 6u);
  EXPECT_EQ(run.counts.ch_hop2, 6u);
  // Each of the 4 heads announces gateways; selected nodes forward once
  // per origin with TTL left.
  EXPECT_GE(run.counts.gateway, 4u);
}

TEST(NetProtocolTest, SecondHopGatewayInformedViaTtlFlood) {
  // Head 0 and head 1 three hops apart (0-4-5-1): node 5 is a second-hop
  // gateway and can only learn its role from node 4's forwarded GATEWAY.
  const auto g = graph::make_graph(6, {{0, 4}, {4, 5}, {5, 1}});
  const auto run = run_distributed_backbone(g, CoverageMode::kThreeHop);
  EXPECT_TRUE(contains_sorted(run.backbone, 4));
  EXPECT_TRUE(contains_sorted(run.backbone, 5));
}

TEST(NetProtocolTest, IsolatedNodeIsItsOwnCluster) {
  const auto g = graph::GraphBuilder(1).build();
  const auto run = run_distributed_backbone(g, CoverageMode::kThreeHop);
  EXPECT_EQ(run.clustering.heads, (NodeSet{0}));
  EXPECT_EQ(run.backbone, (NodeSet{0}));
  EXPECT_EQ(run.counts.hello, 1u);
  EXPECT_EQ(run.counts.gateway, 0u);
}

TEST(NetProtocolTest, MonotoneChainTakesLinearRounds) {
  // The paper's worst case: a monotone-id chain clusters sequentially, so
  // rounds grow linearly with n.
  const auto g20 = graph::make_path(20);
  const auto g60 = graph::make_path(60);
  const auto r20 = run_distributed_backbone(g20, CoverageMode::kThreeHop);
  const auto r60 = run_distributed_backbone(g60, CoverageMode::kThreeHop);
  EXPECT_GT(r60.rounds, r20.rounds);
  EXPECT_GE(r60.rounds, 30u);  // ~n/2 sequential head decisions
}

// ---- Equivalence sweep: distributed == centralized ----------------------

struct NetParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;
  CoverageMode mode;

  friend std::ostream& operator<<(std::ostream& os, const NetParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed,
                                    core::to_string(p.mode));
  }
};

class DistributedEquivalence : public ::testing::TestWithParam<NetParam> {};

TEST_P(DistributedEquivalence, MatchesCentralizedPipeline) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto& g = net->graph;

  const auto run = run_distributed_backbone(g, mode);
  const auto reference = core::build_static_backbone(g, mode);

  // Clustering equivalence.
  EXPECT_EQ(run.clustering.heads, reference.clustering.heads);
  EXPECT_EQ(run.clustering.head_of, reference.clustering.head_of);

  // Table equivalence (per node).
  for (NodeId v = 0; v < g.order(); ++v) {
    EXPECT_EQ(run.tables.ch_hop1[v], reference.tables.ch_hop1[v])
        << "hop1 of " << v;
    EXPECT_TRUE(run.tables.ch_hop2[v] == reference.tables.ch_hop2[v])
        << "hop2 of " << v;
  }

  // Coverage + selection equivalence per head, and the same backbone.
  NodeSet distributed_cds = run.clustering.heads;
  for (NodeId h : run.clustering.heads) {
    EXPECT_EQ(run.coverage[h].two_hop, reference.coverage[h].two_hop);
    EXPECT_EQ(run.coverage[h].three_hop, reference.coverage[h].three_hop);
    EXPECT_EQ(run.selection[h].gateways, reference.selection[h].gateways);
    for (NodeId w : run.selection[h].gateways)
      insert_sorted(distributed_cds, w);
  }
  EXPECT_EQ(distributed_cds, reference.cds);
  EXPECT_EQ(run.backbone, reference.cds);

  // Message-optimality shape: a constant number of messages per node for
  // construction (HELLO + role + two table messages + gateway floods).
  EXPECT_LE(run.counts.total(), 8 * g.order());
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, DistributedEquivalence,
    ::testing::Values(
        NetParam{20, 6, 71, CoverageMode::kTwoPointFiveHop},
        NetParam{20, 6, 71, CoverageMode::kThreeHop},
        NetParam{40, 6, 72, CoverageMode::kTwoPointFiveHop},
        NetParam{40, 6, 72, CoverageMode::kThreeHop},
        NetParam{60, 18, 73, CoverageMode::kTwoPointFiveHop},
        NetParam{60, 18, 73, CoverageMode::kThreeHop},
        NetParam{80, 6, 74, CoverageMode::kTwoPointFiveHop},
        NetParam{80, 6, 74, CoverageMode::kThreeHop},
        NetParam{100, 18, 75, CoverageMode::kTwoPointFiveHop},
        NetParam{100, 18, 75, CoverageMode::kThreeHop},
        NetParam{100, 6, 76, CoverageMode::kTwoPointFiveHop},
        NetParam{100, 6, 76, CoverageMode::kThreeHop}));

TEST(SimulatorTest, LivelockGuardThrows) {
  // A process that transmits forever must trip the max_rounds guard.
  class Chatter final : public NodeProcess {
   public:
    void start(Mailbox& out) override { out.send(HelloMsg{}); }
    void on_round(std::uint32_t, Inbox, Mailbox& out) override {
      out.send(HelloMsg{});
    }
    bool done() const override { return false; }
  };
  const auto g = graph::make_path(2);
  Simulator sim(g, [](NodeId) { return std::make_unique<Chatter>(); });
  EXPECT_THROW(sim.run(50), std::runtime_error);
}

TEST(SimulatorTest, RejectsNullFactory) {
  const auto g = graph::make_path(2);
  EXPECT_THROW(Simulator(g, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace manet::net
