// Cross-check of the spatial-grid unit_disk_graph against the O(n^2)
// reference pair scan, plus unit tests of the SpatialGrid bucketing
// itself. The grid rewrite must be invisible: identical edge sets on
// every configuration, including the degenerate ones.
#include "geom/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "geom/unit_disk.hpp"

namespace manet::geom {
namespace {

std::vector<Point> random_points(Rng& rng, std::size_t n, double width,
                                 double height) {
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, width), rng.uniform(0.0, height)});
  return pts;
}

void expect_same_edges(const std::vector<Point>& pts, double range) {
  // Every construction path — builder and streaming, dense and sparse
  // cell index — must reproduce the reference pair scan exactly.
  const auto ref = unit_disk_graph_reference(pts, range);
  for (const auto index : {GridIndex::kAuto, GridIndex::kDense,
                           GridIndex::kSparse}) {
    const auto grid = unit_disk_graph(pts, range, index);
    ASSERT_EQ(grid.order(), ref.order());
    EXPECT_EQ(grid.edges(), ref.edges());
    const auto streamed = unit_disk_graph_streaming(pts, range, index);
    ASSERT_EQ(streamed.order(), ref.order());
    EXPECT_EQ(streamed.edges(), ref.edges());
  }
}

TEST(SpatialGridTest, BucketsEveryNodeExactlyOnce) {
  Rng rng(11);
  const auto pts = random_points(rng, 200, 100.0, 60.0);
  const SpatialGrid grid(pts, 10.0);
  std::vector<int> seen(pts.size(), 0);
  for (std::size_t r = 0; r < grid.rows(); ++r)
    for (std::size_t c = 0; c < grid.cols(); ++c)
      for (NodeId v : grid.cell(c, r)) {
        ASSERT_LT(v, pts.size());
        ++seen[v];
        EXPECT_EQ(grid.col_of(pts[v]), c);
        EXPECT_EQ(grid.row_of(pts[v]), r);
      }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(SpatialGridTest, BlockContainsAllInRangeCandidates) {
  Rng rng(12);
  const double range = 7.5;
  const auto pts = random_points(rng, 300, 100.0, 100.0);
  const SpatialGrid grid(pts, range);
  for (NodeId i = 0; i < pts.size(); ++i) {
    std::vector<bool> candidate(pts.size(), false);
    grid.for_each_in_block(grid.col_of(pts[i]), grid.row_of(pts[i]),
                           [&](NodeId v) { candidate[v] = true; });
    EXPECT_TRUE(candidate[i]);  // a node is its own block member
    for (NodeId j = 0; j < pts.size(); ++j)
      if (distance_sq(pts[i], pts[j]) < range * range) {
        EXPECT_TRUE(candidate[j]) << "in-range pair " << i << "," << j
                                  << " missing from the candidate block";
      }
  }
}

TEST(SpatialGridTest, TinyCellSizeStaysOrderN) {
  Rng rng(13);
  const std::size_t n = 50;
  const auto pts = random_points(rng, n, 100.0, 100.0);
  // A microscopic cell over a huge area: kAuto must switch to the sparse
  // index (storage proportional to occupied cells, not the lattice)...
  const SpatialGrid grid(pts, 1e-7);
  EXPECT_TRUE(grid.sparse());
  EXPECT_LE(grid.occupied_cells(), n);
  std::size_t bucketed = 0;
  grid.for_each_occupied(
      [&](std::size_t, std::size_t, std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        bucketed += end - begin;
      });
  EXPECT_EQ(bucketed, n);
  // ...while an explicit dense request falls back to coarsening the
  // lattice until the cell count is O(n), as before.
  const SpatialGrid dense(pts, 1e-7, GridIndex::kDense);
  EXPECT_FALSE(dense.sparse());
  EXPECT_LE(dense.cols() * dense.rows(), std::max<std::size_t>(64, 4 * n));
}

TEST(SpatialGridTest, SparseIndexMatchesDenseBucketing) {
  // At a lattice small enough for both modes, sparse and dense must put
  // every node in the same (col, row) cell and enumerate the same
  // occupied cells in the same row-major order.
  Rng rng(14);
  const auto pts = random_points(rng, 120, 100.0, 100.0);
  const SpatialGrid dense(pts, 10.0, GridIndex::kDense);
  const SpatialGrid sparse(pts, 10.0, GridIndex::kSparse);
  ASSERT_EQ(dense.cols(), sparse.cols());
  ASSERT_EQ(dense.rows(), sparse.rows());
  EXPECT_FALSE(dense.sparse());
  EXPECT_TRUE(sparse.sparse());
  std::vector<std::pair<std::size_t, std::size_t>> dense_cells, sparse_cells;
  dense.for_each_occupied([&](std::size_t c, std::size_t r, std::size_t,
                              std::size_t) { dense_cells.push_back({r, c}); });
  sparse.for_each_occupied([&](std::size_t c, std::size_t r, std::size_t,
                               std::size_t) { sparse_cells.push_back({r, c}); });
  EXPECT_EQ(dense_cells, sparse_cells);
  EXPECT_EQ(sparse.occupied_cells(), sparse_cells.size());
  for (const auto& [r, c] : sparse_cells) {
    const auto d = dense.cell(c, r);
    const auto s = sparse.cell(c, r);
    EXPECT_TRUE(std::equal(d.begin(), d.end(), s.begin(), s.end()));
  }
  // Probing agrees cell for cell whether or not the cell is occupied.
  EXPECT_EQ(dense.cell(0, 0).size(), sparse.cell(0, 0).size());
}

TEST(SpatialGridCrossCheckTest, RandomizedConfigsMatchReference) {
  Rng rng(2026);
  const struct {
    std::size_t n;
    double width, height, range;
  } configs[] = {
      {50, 100.0, 100.0, 15.0},   // paper-scale sparse
      {200, 100.0, 100.0, 9.0},   // paper-scale dense
      {300, 100.0, 100.0, 3.0},   // many cells, sparse graph
      {150, 200.0, 50.0, 12.0},   // non-square area
      {120, 100.0, 100.0, 250.0}, // range larger than the area: one cell
      {100, 1.0, 1.0, 0.5},       // all points nearly on top of each other
  };
  for (const auto& cfg : configs) {
    for (int trial = 0; trial < 3; ++trial) {
      const auto pts = random_points(rng, cfg.n, cfg.width, cfg.height);
      expect_same_edges(pts, cfg.range);
    }
  }
}

TEST(SpatialGridCrossCheckTest, AllPointsInOneCellMatchesReference) {
  Rng rng(7);
  // Points confined to a tiny patch of a big area: one populated cell.
  std::vector<Point> pts;
  for (std::size_t i = 0; i < 80; ++i)
    pts.push_back({50.0 + rng.uniform(0.0, 0.5), 50.0 + rng.uniform(0.0, 0.5)});
  expect_same_edges(pts, 10.0);
}

TEST(SpatialGridCrossCheckTest, PointsOnCellBoundariesMatchReference) {
  // Lattice points spaced exactly one range apart sit on cell borders;
  // distances of exactly `range` must stay excluded in both paths.
  const double range = 10.0;
  std::vector<Point> pts;
  for (int i = 0; i <= 6; ++i)
    for (int j = 0; j <= 6; ++j)
      pts.push_back({i * range, j * range});
  // Plus duplicates (distance 0) and near-boundary jitter.
  pts.push_back({30.0, 30.0});
  pts.push_back({30.0 + 1e-12, 30.0});
  pts.push_back({range - 1e-12, 0.0});
  expect_same_edges(pts, range);

  const auto g = unit_disk_graph(pts, range);
  // Exact-range lattice neighbors are excluded (strict inequality)...
  EXPECT_FALSE(g.has_edge(0, 1));
  // ...while the jittered point just inside the range connects.
  EXPECT_TRUE(g.has_edge(0, static_cast<NodeId>(pts.size() - 1)));
}

TEST(SpatialGridCrossCheckTest, DegenerateInputsMatchReference) {
  expect_same_edges({}, 5.0);                    // empty
  expect_same_edges({{3.0, 4.0}}, 5.0);          // single node
  expect_same_edges({{0, 0}, {0, 0}, {0, 0}}, 1.0);  // all identical
  // Collinear points (zero-height bounding box).
  std::vector<Point> line;
  for (int i = 0; i < 40; ++i) line.push_back({i * 1.5, 7.0});
  expect_same_edges(line, 4.0);
}

TEST(SpatialGridCrossCheckTest, HugeAreaTinyRangeMatchesReference) {
  // Clusters scattered over a 1e6 x 1e6 area with a range of 5: the full
  // lattice would be 4e10 cells, so kAuto must go sparse — and still
  // produce the reference edge set (including the lattice-dimension
  // clamp's fall-back coarsening in the explicit dense mode).
  Rng rng(15);
  std::vector<Point> pts;
  for (int cluster = 0; cluster < 8; ++cluster) {
    const Point c{rng.uniform(0.0, 1e6), rng.uniform(0.0, 1e6)};
    for (int i = 0; i < 12; ++i)
      pts.push_back({c.x + rng.uniform(-6.0, 6.0),
                     c.y + rng.uniform(-6.0, 6.0)});
  }
  expect_same_edges(pts, 5.0);
  const SpatialGrid grid(pts, 5.0);
  EXPECT_TRUE(grid.sparse());
  EXPECT_LE(grid.occupied_cells(), pts.size());
}

}  // namespace
}  // namespace manet::geom
