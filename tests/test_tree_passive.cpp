// Tests for the Pagani–Rossi forwarding tree and Kwon–Gerla passive
// clustering (the remaining §2 related-work systems).
#include <gtest/gtest.h>

#include <algorithm>

#include "broadcast/forwarding_tree.hpp"
#include "broadcast/passive_clustering.hpp"
#include "common/rng.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "mobility/waypoint.hpp"
#include "paper_fixtures.hpp"

namespace manet::broadcast {
namespace {

using core::CoverageMode;

class Figure3Tree : public ::testing::Test {
 protected:
  graph::Graph g_ = testing::paper_figure3_network();
  cluster::Clustering c_ = cluster::lowest_id_clustering(g_);
  core::NeighborTables t_ =
      build_neighbor_tables(g_, c_, CoverageMode::kTwoPointFiveHop);
};

TEST_F(Figure3Tree, RootedAtSourceHead) {
  const auto tree = build_forwarding_tree(g_, c_, t_, 9);
  EXPECT_EQ(tree.root_head, 2u);  // node 9's clusterhead
  EXPECT_EQ(validate_forwarding_tree(g_, c_, tree), "");
}

TEST_F(Figure3Tree, AllClustersJoin) {
  for (NodeId s = 0; s < g_.order(); ++s) {
    const auto tree = build_forwarding_tree(g_, c_, t_, s);
    EXPECT_EQ(validate_forwarding_tree(g_, c_, tree), "") << "source " << s;
    for (NodeId h : c_.heads) EXPECT_TRUE(tree.contains(h));
  }
}

TEST_F(Figure3Tree, AlternatesHeadGatewayHead) {
  const auto tree = build_forwarding_tree(g_, c_, t_, 0);
  // Every head except the root hangs below a non-head connector whose
  // parent chain leads to another head.
  for (NodeId h : c_.heads) {
    if (h == tree.root_head) continue;
    const NodeId gw = tree.parent[h];
    ASSERT_NE(gw, kInvalidNode);
    EXPECT_FALSE(c_.is_head(gw));
  }
}

TEST_F(Figure3Tree, TreeBroadcastDeliversEverywhere) {
  const auto tree = build_forwarding_tree(g_, c_, t_, 0);
  const auto s = forwarding_tree_broadcast(g_, tree, 0);
  EXPECT_TRUE(s.delivered_all);
  // The tree prunes relative to the full static backbone (9 nodes).
  EXPECT_LE(s.forward_count(), 9u);
}

TEST(ForwardingTreeTest, SingleClusterIsJustTheHead) {
  const auto g = graph::make_star(6);
  const auto c = cluster::lowest_id_clustering(g);
  const auto t = core::build_neighbor_tables(g, c, CoverageMode::kThreeHop);
  const auto tree = build_forwarding_tree(g, c, t, 3);
  EXPECT_EQ(tree.root_head, 0u);
  EXPECT_EQ(tree.members, (NodeSet{0}));
  const auto s = forwarding_tree_broadcast(g, tree, 3);
  EXPECT_TRUE(s.delivered_all);
}

// ---- Property sweep -----------------------------------------------------

struct TreeParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;
  CoverageMode mode;

  friend std::ostream& operator<<(std::ostream& os, const TreeParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed,
                                    core::to_string(p.mode));
  }
};

class TreeSweep : public ::testing::TestWithParam<TreeParam> {};

TEST_P(TreeSweep, ValidTreeAndFullDelivery) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto c = cluster::lowest_id_clustering(net->graph);
  const auto t = core::build_neighbor_tables(net->graph, c, mode);
  Rng pick(seed ^ 0xfeed);
  for (int i = 0; i < 3; ++i) {
    const auto s = static_cast<NodeId>(pick.index(net->graph.order()));
    const auto tree = build_forwarding_tree(net->graph, c, t, s);
    EXPECT_EQ(validate_forwarding_tree(net->graph, c, tree), "")
        << "source " << s;
    EXPECT_TRUE(forwarding_tree_broadcast(net->graph, tree, s).delivered_all)
        << "source " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, TreeSweep,
    ::testing::Values(
        TreeParam{20, 6, 101, CoverageMode::kTwoPointFiveHop},
        TreeParam{40, 6, 102, CoverageMode::kThreeHop},
        TreeParam{60, 18, 103, CoverageMode::kTwoPointFiveHop},
        TreeParam{80, 6, 104, CoverageMode::kThreeHop},
        TreeParam{100, 18, 105, CoverageMode::kTwoPointFiveHop},
        TreeParam{100, 6, 106, CoverageMode::kThreeHop}));

// ---- Passive clustering --------------------------------------------------

TEST(PassiveClusteringTest, SourceBecomesClusterheadOnFirstFlood) {
  const auto g = testing::paper_figure3_network();
  PassiveClusteringSession session(g.order());
  const auto r = session.broadcast(g, 0);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(session.states()[0], PassiveState::kClusterhead);
  EXPECT_GE(session.clusterhead_count(), 1u);
}

TEST(PassiveClusteringTest, FirstFloodPropagatesLikeFlooding) {
  // No setup phase: the first packet travels while the structure forms,
  // so it floods the whole network.
  const auto g = graph::make_path(8);
  PassiveClusteringSession session(g.order());
  const auto first = session.broadcast(g, 0);
  EXPECT_TRUE(first.delivered_all);
  EXPECT_GE(first.forward_count(), 7u);
}

TEST(PassiveClusteringTest, StarOrdinaryLeavesGoSilent) {
  // After the structure forms, every leaf is ordinary (one adjacent
  // clusterhead): the second broadcast uses only the center.
  const auto g = graph::make_star(8);
  PassiveClusteringSession session(g.order());
  EXPECT_TRUE(session.broadcast(g, 0).delivered_all);
  for (NodeId v = 1; v < 8; ++v)
    EXPECT_EQ(session.states()[v], PassiveState::kOrdinary);
  const auto second = session.broadcast(g, 0);
  EXPECT_TRUE(second.delivered_all);
  EXPECT_EQ(second.forward_count(), 1u);
}

TEST(PassiveClusteringTest, PathAlternatesHeadsAndGateways) {
  // On a path the first flood mints clusterheads every other node and
  // the bridges become gateways, so later floods still deliver.
  const auto g = graph::make_path(8);
  PassiveClusteringSession session(g.order());
  EXPECT_TRUE(session.broadcast(g, 0).delivered_all);
  EXPECT_EQ(session.states()[0], PassiveState::kClusterhead);
  EXPECT_EQ(session.states()[1], PassiveState::kGateway);
  EXPECT_EQ(session.states()[2], PassiveState::kClusterhead);
  const auto later = session.broadcast(g, 0);
  EXPECT_TRUE(later.delivered_all);
}

TEST(PassiveClusteringTest, StaleStructureLosesDelivery) {
  // The documented weakness: the structure formed on one topology is
  // wrong for the next. On the star, every leaf ends up ordinary; when
  // the network reshapes into a path, the ordinary node 1 is suddenly
  // the sole bridge — and silently drops the flood.
  const auto star = graph::make_star(4);
  const auto path = graph::make_path(4);
  PassiveClusteringSession session(4);
  EXPECT_TRUE(session.broadcast(star, 0).delivered_all);
  ASSERT_EQ(session.states()[1], PassiveState::kOrdinary);
  const auto stale = session.broadcast(path, 0);
  EXPECT_FALSE(stale.delivered_all);
  EXPECT_DOUBLE_EQ(stale.delivery_ratio(), 0.5);
}

TEST(PassiveClusteringTest, LaterFloodsSaveTransmissions) {
  Rng topo_rng(21);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 60;
  cfg.range = geom::range_for_average_degree(18.0, 60, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, topo_rng);
  ASSERT_TRUE(net.has_value());
  PassiveClusteringSession session(net->graph.order());
  const auto first = session.broadcast(net->graph, 0);
  EXPECT_TRUE(first.delivered_all);
  const auto later = session.broadcast(net->graph, 0);
  EXPECT_LT(later.forward_count(), first.forward_count());
  EXPECT_GE(session.clusterhead_count(), 1u);
  // Same topology: the formed structure still reaches most nodes.
  EXPECT_GT(later.delivery_ratio(), 0.5);
}

TEST(PassiveClusteringTest, StateCountsConsistent) {
  const auto g = testing::paper_figure3_network();
  PassiveClusteringSession session(g.order());
  session.broadcast(g, 5);
  std::size_t heads = 0, gateways = 0;
  for (const auto s : session.states()) {
    heads += (s == PassiveState::kClusterhead);
    gateways += (s == PassiveState::kGateway);
  }
  EXPECT_EQ(heads, session.clusterhead_count());
  EXPECT_EQ(gateways, session.gateway_count());
}

TEST(PassiveClusteringTest, RejectsBadArguments) {
  const auto g = graph::make_path(3);
  PassiveClusteringSession session(g.order());
  EXPECT_THROW(session.broadcast(g, 3), std::invalid_argument);
  PassiveClusteringSession wrong(5);
  EXPECT_THROW(wrong.broadcast(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace manet::broadcast
