// Tests for the sharded parallel repair path (src/incr worker_pool +
// apply_parallel) and the depth-2 tick pipeline: the WorkerPool
// primitive (fork-join and submit/wait), oracle equivalence of the
// parallel engine at every tick, and bitwise determinism of the
// maintained state, metrics and churn-record hashes across thread
// counts and pipeline depths. These suites (plus ReplicatorTest/
// ScenarioTest) are the ones CI runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "exp/churn.hpp"
#include "geom/unit_disk.hpp"
#include "incr/pipeline.hpp"
#include "incr/worker_pool.hpp"
#include "mobility/waypoint.hpp"
#include "obs/session.hpp"

namespace manet::incr {
namespace {

std::vector<geom::Point> random_layout(std::size_t n, Rng& rng) {
  std::vector<geom::Point> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  return pts;
}

TEST(WorkerPoolTest, RunsEveryJobExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.lanes(), 4u);
  constexpr std::size_t kJobs = 64;
  std::vector<std::atomic<int>> hits(kJobs);
  std::vector<std::atomic<int>> lane_used(4);
  pool.run(kJobs, [&](std::size_t job, std::size_t lane) {
    ASSERT_LT(lane, 4u);
    ++hits[job];
    ++lane_used[lane];
  });
  for (std::size_t j = 0; j < kJobs; ++j) EXPECT_EQ(hits[j].load(), 1);
  // The caller always participates (lane 0 drains at least one job).
  EXPECT_GT(lane_used[0].load(), 0);
}

TEST(WorkerPoolTest, SingleLaneRunsInlineInOrder) {
  WorkerPool pool(1);
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t job, std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    order.push_back(job);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPoolTest, ZeroJobsIsANoOp) {
  WorkerPool pool(3);
  pool.run(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(WorkerPoolTest, RethrowsFirstJobException) {
  WorkerPool pool(3);
  EXPECT_THROW(pool.run(16,
                        [&](std::size_t job, std::size_t) {
                          if (job % 4 == 1)
                            throw std::runtime_error("job failed");
                        }),
               std::runtime_error);
  // The pool stays usable after an exceptional batch.
  std::atomic<int> done{0};
  pool.run(8, [&](std::size_t, std::size_t) { ++done; });
  EXPECT_EQ(done.load(), 8);
}

TEST(WorkerPoolTest, ReusableAcrossManyBatches) {
  WorkerPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 50; ++batch)
    pool.run(7, [&](std::size_t, std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 350u);
}

TEST(WorkerPoolTest, SubmitWaitRunsEveryJobOnce) {
  WorkerPool pool(4);
  constexpr std::size_t kJobs = 32;
  std::vector<std::atomic<int>> hits(kJobs);
  WorkerPool::Ticket ticket =
      pool.submit(kJobs, [&](std::size_t job, std::size_t) { ++hits[job]; });
  EXPECT_TRUE(ticket);
  pool.wait(ticket);
  EXPECT_FALSE(ticket);
  for (std::size_t j = 0; j < kJobs; ++j) EXPECT_EQ(hits[j].load(), 1);
}

TEST(WorkerPoolTest, SingleLaneSubmitDefersUntilWait) {
  // With no workers the async batch cannot make progress on its own;
  // wait() must execute it on the calling thread (this is what lets a
  // threads=1 pipeline still run at pipeline_depth 2).
  WorkerPool pool(1);
  int ran = 0;
  WorkerPool::Ticket ticket =
      pool.submit(3, [&](std::size_t, std::size_t lane) {
        EXPECT_EQ(lane, 0u);
        ++ran;
      });
  EXPECT_EQ(ran, 0);
  pool.wait(ticket);
  EXPECT_EQ(ran, 3);
}

TEST(WorkerPoolTest, WaitRethrowsAndPoolSurvives) {
  WorkerPool pool(2);
  WorkerPool::Ticket ticket = pool.submit(8, [&](std::size_t job,
                                                 std::size_t) {
    if (job == 5) throw std::runtime_error("async job failed");
  });
  EXPECT_THROW(pool.wait(ticket), std::runtime_error);
  std::atomic<int> done{0};
  pool.run(4, [&](std::size_t, std::size_t) { ++done; });
  EXPECT_EQ(done.load(), 4);
}

TEST(WorkerPoolTest, DestructorDrainsUnwaitedBatch) {
  // A submitted batch that is never waited on must still run exactly
  // once before the workers exit (the pipeline relies on join-on-
  // destruction; the pool backstops it).
  std::vector<std::atomic<int>> hits(16);
  {
    WorkerPool pool(4);
    (void)pool.submit(16,
                      [&](std::size_t job, std::size_t) { ++hits[job]; });
  }
  for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(hits[j].load(), 1);
}

/// Oracle soak with the sharded engine: every tick rebuilds everything
/// from scratch and MANET_REQUIREs bitwise equality, so any divergence
/// introduced by the parallel path fails loudly here.
///
/// Uniformly random teleports almost always fuse into one region (each
/// staged node paints two 7x7 cell blocks; on practical grids they
/// chain together), which would leave the sharded path untested. So the
/// churn is structured: each tick teleports one node inside each of
/// four corner areas far enough apart that they must land in distinct
/// regions, plus one global random teleporter whose old/new blocks keep
/// exercising the cross-region merge paths.
void run_parallel_oracle(std::size_t n, double degree, std::size_t ticks,
                         std::size_t threads, std::uint64_t seed) {
  Rng rng(seed);
  const double range = geom::range_for_average_degree(degree, n, 100, 100);
  auto positions = random_layout(n, rng);

  PipelineOptions opts;
  opts.mode = core::CoverageMode::kTwoPointFiveHop;
  opts.oracle_check = true;
  opts.threads = threads;
  IncrementalPipeline pipeline(positions, range, 100, 100, opts);

  // Corner areas: 24x24 boxes whose painted blocks stay disjoint (edge
  // gap 46 units >= 7 grid cells at every tested n/degree).
  const geom::Point anchors[] = {{15, 15}, {85, 15}, {15, 85}, {85, 85}};
  constexpr double kHalf = 12.0;
  const auto in_box = [&](geom::Point p, geom::Point a) {
    return std::abs(p.x - a.x) <= kHalf && std::abs(p.y - a.y) <= kHalf;
  };

  std::size_t multi_region_ticks = 0;
  for (std::size_t t = 0; t < ticks; ++t) {
    for (const geom::Point a : anchors) {
      std::vector<NodeId> near;
      for (std::size_t v = 0; v < n; ++v)
        if (in_box(positions[v], a)) near.push_back(static_cast<NodeId>(v));
      ASSERT_FALSE(near.empty());
      const NodeId v = near[rng.index(near.size())];
      positions[v] = {rng.uniform(a.x - kHalf, a.x + kHalf),
                      rng.uniform(a.y - kHalf, a.y + kHalf)};
      pipeline.stage_move(v, positions[v]);
    }
    const auto w = static_cast<NodeId>(rng.index(n));
    positions[w] = {rng.uniform(0, 100), rng.uniform(0, 100)};
    pipeline.stage_move(w, positions[w]);

    TickStats stats{};
    ASSERT_NO_THROW(stats = pipeline.tick())
        << "oracle mismatch at tick " << t;
    if (stats.regions >= 2) ++multi_region_ticks;
  }
  // The soak must actually exercise the sharded path, not degenerate to
  // the single-region sequential fallback.
  EXPECT_GT(multi_region_ticks, ticks / 2);
}

// Region partitioning needs grid cells to spare: with degree d the cell
// side tracks the radio range, so the grid is ~sqrt(n*pi/d) cells wide
// and each staged node paints two 7x7 blocks. Sparse n=1000 gives a
// 22x22 grid (regions split routinely); dense d=18 needs n=2000 for a
// comparable 18x18 grid.
TEST(ParallelOracleTest, TeleportSparseThreads2) {
  run_parallel_oracle(1000, 6.0, 100, 2, 811);
}

TEST(ParallelOracleTest, TeleportSparseThreads8) {
  run_parallel_oracle(1000, 6.0, 100, 8, 812);
}

TEST(ParallelOracleTest, TeleportDenseThreads4) {
  run_parallel_oracle(2000, 18.0, 40, 4, 813);
}

TEST(ParallelOracleTest, WaypointMotionThreads4) {
  // Local waypoint motion (the bench's workload), sharded, oracle on.
  Rng rng(814);
  const std::size_t n = 1000;
  const double range = geom::range_for_average_degree(6.0, n, 100, 100);
  const auto initial = random_layout(n, rng);
  mobility::WaypointModel model(initial, mobility::WaypointConfig{},
                                Rng(derive_seed(814, 1, 0)));
  PipelineOptions opts;
  opts.mode = core::CoverageMode::kTwoPointFiveHop;
  opts.oracle_check = true;
  opts.threads = 4;
  IncrementalPipeline pipeline(initial, range, 100, 100, opts);
  Rng pick(derive_seed(814, 2, 0));
  for (std::size_t t = 0; t < 100; ++t) {
    std::vector<NodeId> moved;
    for (std::size_t j = 0; j < 12; ++j)
      moved.push_back(static_cast<NodeId>(pick.index(n)));
    model.step_nodes(moved, 1.0);
    for (const NodeId v : moved) pipeline.stage_move(v, model.positions()[v]);
    ASSERT_NO_THROW(pipeline.tick()) << "oracle mismatch at tick " << t;
  }
}

TEST(ParallelDeterminismTest, LockstepStateIdenticalAcrossThreadCounts) {
  // Three pipelines fed identical move streams at threads 1 / 2 / 8;
  // after every tick the maintained structures must be bit-identical
  // (diff_against checks clustering, tables, coverage, selections, CDS).
  Rng rng(815);
  const std::size_t n = 1000;
  const double range = geom::range_for_average_degree(6.0, n, 100, 100);
  auto positions = random_layout(n, rng);

  const auto make = [&](std::size_t threads) {
    PipelineOptions opts;
    opts.mode = core::CoverageMode::kTwoPointFiveHop;
    opts.threads = threads;
    return IncrementalPipeline(positions, range, 100, 100, opts);
  };
  IncrementalPipeline p1 = make(1);
  IncrementalPipeline p2 = make(2);
  IncrementalPipeline p8 = make(8);

  // Same corner-structured churn as the oracle soaks (see
  // run_parallel_oracle) so most ticks are genuinely multi-region.
  const geom::Point anchors[] = {{15, 15}, {85, 15}, {15, 85}, {85, 85}};
  constexpr double kHalf = 12.0;
  for (std::size_t t = 0; t < 80; ++t) {
    std::vector<NodeId> movers;
    for (const geom::Point a : anchors) {
      std::vector<NodeId> near;
      for (std::size_t v = 0; v < n; ++v)
        if (std::abs(positions[v].x - a.x) <= kHalf &&
            std::abs(positions[v].y - a.y) <= kHalf)
          near.push_back(static_cast<NodeId>(v));
      ASSERT_FALSE(near.empty());
      const NodeId v = near[rng.index(near.size())];
      positions[v] = {rng.uniform(a.x - kHalf, a.x + kHalf),
                      rng.uniform(a.y - kHalf, a.y + kHalf)};
      movers.push_back(v);
    }
    movers.push_back(static_cast<NodeId>(rng.index(n)));
    positions[movers.back()] = {rng.uniform(0, 100), rng.uniform(0, 100)};
    for (const NodeId v : movers) {
      p1.stage_move(v, positions[v]);
      p2.stage_move(v, positions[v]);
      p8.stage_move(v, positions[v]);
    }
    const TickStats s1 = p1.tick();
    const TickStats s2 = p2.tick();
    const TickStats s8 = p8.tick();
    ASSERT_EQ(p1.backbone().diff_against(p2.materialize()), "")
        << "threads=2 diverged at tick " << t;
    ASSERT_EQ(p1.backbone().diff_against(p8.materialize()), "")
        << "threads=8 diverged at tick " << t;
    // Tick accounting is part of the determinism contract too.
    EXPECT_EQ(s1.link_changes, s2.link_changes);
    EXPECT_EQ(s1.head_changes, s2.head_changes);
    EXPECT_EQ(s1.role_changes, s8.role_changes);
    EXPECT_EQ(s1.backbone_changes, s8.backbone_changes);
    EXPECT_EQ(s1.rows_recomputed, s8.rows_recomputed);
    EXPECT_EQ(s1.regions, s2.regions);
    EXPECT_EQ(s1.regions, s8.regions);
  }
}

TEST(ParallelDeterminismTest, ChurnSoakHashAndMetricsIdentical) {
  // The bench-level contract: run_churn differing only in `threads`
  // produces the same final state hash and the same deterministic
  // metric snapshot. The filter drops the scheduling-plane families
  // (`.lane.` timings, `.pool.` gauges) — those legitimately vary with
  // the lane count; everything else must match byte for byte.
  const auto run_at = [](std::size_t threads, std::string* metrics) {
    exp::ChurnConfig config;
    config.nodes = 1000;
    config.degree = 6.0;
    config.ticks = 60;
    config.move_fraction = 0.02;
    config.seed = 42;
    config.rebuild_baseline = false;
    config.threads = threads;
    obs::Session session;
    config.obs = &session;
    const exp::ChurnResult r = exp::run_churn(config);
    *metrics = session.registry.snapshot().deterministic().to_json();
    return r;
  };
  std::string m1, m2, m8;
  const exp::ChurnResult r1 = run_at(1, &m1);
  const exp::ChurnResult r2 = run_at(2, &m2);
  const exp::ChurnResult r8 = run_at(8, &m8);
  EXPECT_NE(r1.state_hash, 0u);
  EXPECT_EQ(r1.state_hash, r2.state_hash);
  EXPECT_EQ(r1.state_hash, r8.state_hash);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m8);
  EXPECT_DOUBLE_EQ(r1.mean_regions, r8.mean_regions);
}

TEST(PipelinedDeterminismTest, LockstepPipelinedMatchesSequential) {
  // A depth-2 pipeline fed the same move stream as the synchronous
  // engine must land on the bit-identical maintained state after
  // drain(), and its per-tick accounting — shifted one tick late by the
  // pipeline — must aggregate to the same totals.
  Rng rng(816);
  const std::size_t n = 1000;
  const double range = geom::range_for_average_degree(6.0, n, 100, 100);
  auto positions = random_layout(n, rng);

  const auto make = [&](std::size_t threads, std::size_t depth) {
    PipelineOptions opts;
    opts.mode = core::CoverageMode::kTwoPointFiveHop;
    opts.threads = threads;
    opts.pipeline_depth = depth;
    return IncrementalPipeline(positions, range, 100, 100, opts);
  };
  IncrementalPipeline sync = make(1, 1);
  IncrementalPipeline piped1 = make(1, 2);
  IncrementalPipeline piped8 = make(8, 2);

  const geom::Point anchors[] = {{15, 15}, {85, 15}, {15, 85}, {85, 85}};
  constexpr double kHalf = 12.0;
  std::size_t sync_links = 0, piped1_links = 0, piped8_links = 0;
  for (std::size_t t = 0; t < 80; ++t) {
    std::vector<NodeId> movers;
    for (const geom::Point a : anchors) {
      std::vector<NodeId> near;
      for (std::size_t v = 0; v < n; ++v)
        if (std::abs(positions[v].x - a.x) <= kHalf &&
            std::abs(positions[v].y - a.y) <= kHalf)
          near.push_back(static_cast<NodeId>(v));
      ASSERT_FALSE(near.empty());
      const NodeId v = near[rng.index(near.size())];
      positions[v] = {rng.uniform(a.x - kHalf, a.x + kHalf),
                      rng.uniform(a.y - kHalf, a.y + kHalf)};
      movers.push_back(v);
    }
    movers.push_back(static_cast<NodeId>(rng.index(n)));
    positions[movers.back()] = {rng.uniform(0, 100), rng.uniform(0, 100)};
    for (const NodeId v : movers) {
      sync.stage_move(v, positions[v]);
      piped1.stage_move(v, positions[v]);
      piped8.stage_move(v, positions[v]);
    }
    sync_links += sync.tick().link_changes;
    piped1_links += piped1.tick().link_changes;
    piped8_links += piped8.tick().link_changes;
  }
  piped1_links += piped1.drain().link_changes;
  piped8_links += piped8.drain().link_changes;
  EXPECT_EQ(sync.backbone().diff_against(piped1.materialize()), "");
  EXPECT_EQ(sync.backbone().diff_against(piped8.materialize()), "");
  EXPECT_EQ(sync_links, piped1_links);
  EXPECT_EQ(sync_links, piped8_links);
  EXPECT_GT(sync_links, 0u);
  // drain() is idempotent once everything has been joined.
  EXPECT_EQ(piped8.drain().link_changes, 0u);
}

TEST(PipelinedDeterminismTest, ChurnPipelinedHashAndMetricsIdentical) {
  // run_churn at pipeline_depth 2, threads {1, 2, 8}: same final state
  // hash and same deterministic metric snapshot as the synchronous
  // depth-1 run (the pipeline_depth gauge sits under `.pool.` exactly
  // so this filtered comparison can hold).
  const auto run_at = [](std::size_t threads, std::size_t depth,
                         std::string* metrics) {
    exp::ChurnConfig config;
    config.nodes = 1000;
    config.degree = 6.0;
    config.ticks = 60;
    config.move_fraction = 0.02;
    config.seed = 43;
    config.rebuild_baseline = false;
    config.threads = threads;
    config.pipeline_depth = depth;
    obs::Session session;
    config.obs = &session;
    const exp::ChurnResult r = exp::run_churn(config);
    *metrics = session.registry.snapshot().deterministic().to_json();
    return r;
  };
  std::string base_metrics;
  const exp::ChurnResult base = run_at(1, 1, &base_metrics);
  EXPECT_NE(base.state_hash, 0u);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    std::string metrics;
    const exp::ChurnResult piped = run_at(threads, 2, &metrics);
    EXPECT_EQ(piped.state_hash, base.state_hash)
        << "pipelined engine diverged at threads=" << threads;
    EXPECT_EQ(metrics, base_metrics)
        << "metric snapshot diverged at threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, SparseIndexChurnHashMatchesDense) {
  // The million-node machinery (sparse cell index + streaming cold
  // build + sharded settling) must land on the same final state hash as
  // the dense sequential engine, at every thread count. This is the
  // equivalence the bench's --scale verify stage gates on. cell_order
  // stays off: the relabeling permutation depends on the chosen grid's
  // lattice (dense clamping coarsens it), so cross-mode comparisons
  // need the original labels on both sides.
  const auto run_at = [](geom::GridIndex grid, bool streaming,
                         std::size_t threads) {
    exp::ChurnConfig config;
    config.nodes = 1000;
    config.degree = 6.0;
    config.ticks = 50;
    config.move_fraction = 0.02;
    config.seed = 77;
    config.rebuild_baseline = false;
    config.grid = grid;
    config.streaming_build = streaming;
    config.threads = threads;
    return exp::run_churn(config);
  };
  const exp::ChurnResult dense = run_at(geom::GridIndex::kDense, false, 1);
  EXPECT_NE(dense.state_hash, 0u);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const exp::ChurnResult sparse =
        run_at(geom::GridIndex::kSparse, true, threads);
    EXPECT_EQ(sparse.state_hash, dense.state_hash)
        << "sparse engine diverged at threads=" << threads;
  }
}

}  // namespace
}  // namespace manet::incr
