// Unit tests for the sorted NodeSet helpers in common/ids.
#include "common/ids.hpp"

#include <gtest/gtest.h>

namespace manet {
namespace {

TEST(IdsTest, InsertKeepsSortedAndUnique) {
  NodeSet s;
  EXPECT_TRUE(insert_sorted(s, 5));
  EXPECT_TRUE(insert_sorted(s, 1));
  EXPECT_TRUE(insert_sorted(s, 3));
  EXPECT_FALSE(insert_sorted(s, 3));
  EXPECT_EQ(s, (NodeSet{1, 3, 5}));
}

TEST(IdsTest, ContainsSorted) {
  NodeSet s{2, 4, 6};
  EXPECT_TRUE(contains_sorted(s, 4));
  EXPECT_FALSE(contains_sorted(s, 5));
  EXPECT_FALSE(contains_sorted(NodeSet{}, 0));
}

TEST(IdsTest, EraseSorted) {
  NodeSet s{1, 2, 3};
  EXPECT_TRUE(erase_sorted(s, 2));
  EXPECT_FALSE(erase_sorted(s, 2));
  EXPECT_EQ(s, (NodeSet{1, 3}));
}

TEST(IdsTest, NormalizeSortsAndDedupes) {
  NodeSet s{5, 1, 5, 3, 1};
  normalize(s);
  EXPECT_EQ(s, (NodeSet{1, 3, 5}));
}

TEST(IdsTest, SetDifference) {
  EXPECT_EQ(set_difference({1, 2, 3, 4}, {2, 4}), (NodeSet{1, 3}));
  EXPECT_EQ(set_difference({1, 2}, {}), (NodeSet{1, 2}));
  EXPECT_EQ(set_difference({}, {1}), (NodeSet{}));
  EXPECT_EQ(set_difference({1, 2}, {1, 2}), (NodeSet{}));
}

TEST(IdsTest, SetIntersection) {
  EXPECT_EQ(set_intersection({1, 2, 3}, {2, 3, 4}), (NodeSet{2, 3}));
  EXPECT_EQ(set_intersection({1}, {2}), (NodeSet{}));
}

TEST(IdsTest, SetUnion) {
  EXPECT_EQ(set_union({1, 3}, {2, 3}), (NodeSet{1, 2, 3}));
  EXPECT_EQ(set_union({}, {}), (NodeSet{}));
}

TEST(IdsTest, IntersectionSize) {
  EXPECT_EQ(intersection_size({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(intersection_size({}, {1}), 0u);
  EXPECT_EQ(intersection_size({7}, {7}), 1u);
}

TEST(IdsTest, IsSubset) {
  EXPECT_TRUE(is_subset({2, 3}, {1, 2, 3}));
  EXPECT_TRUE(is_subset({}, {1}));
  EXPECT_FALSE(is_subset({0}, {1, 2}));
  EXPECT_TRUE(is_subset({}, {}));
}

TEST(IdsTest, InvalidNodeIsNotAValidId) {
  EXPECT_GT(kInvalidNode, 1u << 30);
}

}  // namespace
}  // namespace manet
