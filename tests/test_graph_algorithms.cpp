// Unit tests for BFS, connectivity and the CDS/IS predicates.
#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace manet::graph {
namespace {

TEST(BfsTest, DistancesOnPath) {
  const Graph g = make_path(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsTest, UnreachableVertices) {
  const Graph g = make_graph(4, {{0, 1}, {2, 3}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(BfsTest, BoundedStopsAtMaxHops) {
  const Graph g = make_path(6);
  const auto d = bfs_distances_bounded(g, 0, 2);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(KHopTest, IncludesSelf) {
  const Graph g = make_path(5);
  EXPECT_EQ(k_hop_neighbors(g, 2, 0), (NodeSet{2}));
}

TEST(KHopTest, MatchesPaperNotationOnPath) {
  const Graph g = make_path(7);
  EXPECT_EQ(k_hop_neighbors(g, 3, 1), (NodeSet{2, 3, 4}));
  EXPECT_EQ(k_hop_neighbors(g, 3, 2), (NodeSet{1, 2, 3, 4, 5}));
  EXPECT_EQ(k_hop_neighbors(g, 3, 3), (NodeSet{0, 1, 2, 3, 4, 5, 6}));
}

TEST(ConnectivityTest, EmptyAndSingleton) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(GraphBuilder(1).build()));
}

TEST(ConnectivityTest, ConnectedAndDisconnected) {
  EXPECT_TRUE(is_connected(make_cycle(6)));
  EXPECT_FALSE(is_connected(make_graph(3, {{0, 1}})));
}

TEST(ComponentsTest, CountsAndLabels) {
  const Graph g = make_graph(5, {{0, 1}, {2, 3}});
  const auto [label, count] = components(g);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[2], label[3]);
  EXPECT_NE(label[0], label[2]);
  EXPECT_NE(label[4], label[0]);
}

TEST(DiameterTest, PathAndCycle) {
  EXPECT_EQ(diameter(make_path(5)), 4u);
  EXPECT_EQ(diameter(make_cycle(6)), 3u);
  EXPECT_EQ(diameter(make_complete(4)), 1u);
}

TEST(DiameterTest, DisconnectedIsUnreachable) {
  EXPECT_EQ(diameter(make_graph(3, {{0, 1}})), kUnreachable);
}

TEST(DominatingSetTest, StarCenterDominates) {
  const Graph g = make_star(6);
  EXPECT_TRUE(is_dominating_set(g, {0}));
  EXPECT_FALSE(is_dominating_set(g, {1}));
  EXPECT_TRUE(is_dominating_set(g, {1, 2, 3, 4, 5, 0}));
}

TEST(DominatingSetTest, EmptySetDominatesNothing) {
  EXPECT_FALSE(is_dominating_set(make_path(2), {}));
}

TEST(IndependentSetTest, Basics) {
  const Graph g = make_path(5);
  EXPECT_TRUE(is_independent_set(g, {0, 2, 4}));
  EXPECT_FALSE(is_independent_set(g, {0, 1}));
  EXPECT_TRUE(is_independent_set(g, {}));
}

TEST(IndependentSetTest, MaximalityEqualsDominating) {
  const Graph g = make_path(5);
  EXPECT_TRUE(is_maximal_independent_set(g, {0, 2, 4}));
  EXPECT_FALSE(is_maximal_independent_set(g, {0, 4}));   // 2 could join
  EXPECT_FALSE(is_maximal_independent_set(g, {0, 1}));   // not independent
}

TEST(InducedConnectedTest, Basics) {
  const Graph g = make_path(5);
  EXPECT_TRUE(induces_connected_subgraph(g, {1, 2, 3}));
  EXPECT_FALSE(induces_connected_subgraph(g, {0, 2}));
  EXPECT_TRUE(induces_connected_subgraph(g, {}));
  EXPECT_TRUE(induces_connected_subgraph(g, {3}));
}

TEST(CdsTest, PathInteriorIsCds) {
  const Graph g = make_path(5);
  EXPECT_TRUE(is_connected_dominating_set(g, {1, 2, 3}));
  EXPECT_FALSE(is_connected_dominating_set(g, {1, 3}));   // not connected
  EXPECT_FALSE(is_connected_dominating_set(g, {1, 2}));   // not dominating
}

TEST(CdsTest, EmptySetOnNonemptyGraph) {
  EXPECT_FALSE(is_connected_dominating_set(make_path(3), {}));
  EXPECT_TRUE(is_connected_dominating_set(Graph{}, {}));
}

TEST(ShortestPathTest, FindsAPath) {
  const Graph g = make_cycle(6);
  const auto p = shortest_path(g, 0, 3);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 3u);
  for (std::size_t i = 0; i + 1 < p.size(); ++i)
    EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
}

TEST(ShortestPathTest, TrivialAndUnreachable) {
  const Graph g = make_graph(3, {{0, 1}});
  EXPECT_EQ(shortest_path(g, 0, 0), (std::vector<NodeId>{0}));
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

}  // namespace
}  // namespace manet::graph
