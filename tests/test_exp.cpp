// Tests for the experiment harness: scenario generation, the figure
// runners (on a reduced grid), the churn runner's topology handling,
// and the paper's qualitative shapes.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "exp/churn.hpp"
#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "graph/algorithms.hpp"

namespace manet::exp {
namespace {

stats::ReplicationPolicy test_policy() {
  stats::ReplicationPolicy p;
  p.min_replications = 8;
  p.max_replications = 40;
  return p;
}

PaperScenario small_scenario() {
  PaperScenario s;
  s.sizes = {20, 40};
  s.degrees = {6.0, 18.0};
  return s;
}

TEST(ScenarioTest, PointsAreTheFullGrid) {
  const PaperScenario s;
  const auto pts = s.points();
  EXPECT_EQ(pts.size(), 18u);  // 9 sizes x 2 degrees
  EXPECT_EQ(pts.front().nodes, 20u);
  EXPECT_DOUBLE_EQ(pts.front().degree, 6.0);
  EXPECT_EQ(pts.back().nodes, 100u);
  EXPECT_DOUBLE_EQ(pts.back().degree, 18.0);
}

TEST(ScenarioTest, NetworksAreConnectedAndSized) {
  const PaperScenario s;
  for (std::size_t rep = 0; rep < 5; ++rep) {
    const auto net = make_network(s, {50, 6.0}, 42, rep);
    EXPECT_EQ(net.graph.order(), 50u);
    EXPECT_TRUE(graph::is_connected(net.graph));
  }
}

TEST(ScenarioTest, ReplicationsAreIndependentButDeterministic) {
  const PaperScenario s;
  const auto a = make_network(s, {30, 6.0}, 7, 0);
  const auto b = make_network(s, {30, 6.0}, 7, 1);
  const auto a_again = make_network(s, {30, 6.0}, 7, 0);
  EXPECT_NE(a.graph.edges(), b.graph.edges());
  EXPECT_EQ(a.graph.edges(), a_again.graph.edges());
}

TEST(ChurnRunnerTest, ReportsConnectedTopologyAndAttempts) {
  // Small dense config: the rejection sampler finds a connected layout
  // well within the budget, and the result says so.
  ChurnConfig config;
  config.nodes = 40;
  config.degree = 18.0;
  config.ticks = 3;
  config.seed = 5;
  config.rebuild_baseline = false;
  const ChurnResult r = run_churn(config);
  EXPECT_TRUE(r.connected);
  EXPECT_GE(r.connect_attempts_used, 1u);
  EXPECT_LE(r.connect_attempts_used, config.connect_attempts);
  EXPECT_NE(r.state_hash, 0u);
}

TEST(ChurnRunnerTest, ExhaustedConnectBudgetIsReportedOrFatal) {
  // 200 nodes at average degree 0.3 are never connected. By default the
  // runner falls back to a disconnected layout but reports the spent
  // budget; with require_connected it must fail loudly instead of
  // silently running a different experiment.
  ChurnConfig config;
  config.nodes = 200;
  config.degree = 0.3;
  config.ticks = 2;
  config.seed = 6;
  config.rebuild_baseline = false;
  config.connect_attempts = 3;
  const ChurnResult r = run_churn(config);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.connect_attempts_used, 3u);

  config.require_connected = true;
  EXPECT_THROW(run_churn(config), std::invalid_argument);
}

TEST(Fig6RunnerTest, ShapesMatchThePaper) {
  const auto rows = run_fig6(small_scenario(), test_policy(), 2026);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    // Figure 6's qualitative content: all three algorithms are close;
    // the static backbone does not exceed MO_CDS (it shares gateways).
    EXPECT_LE(r.static_25.mean, r.mo_cds.mean * 1.05)
        << "n=" << r.nodes << " d=" << r.degree;
    EXPECT_LE(r.static_3.mean, r.mo_cds.mean * 1.05);
    // The paper: 2.5-hop vs 3-hop differ by <2%; allow noise headroom.
    EXPECT_NEAR(r.static_25.mean, r.static_3.mean,
                0.12 * r.static_3.mean + 0.5);
    EXPECT_GT(r.static_25.mean, 0.0);
  }
  // CDS size grows with n within one degree series.
  EXPECT_LT(rows[0].static_25.mean, rows[1].static_25.mean);  // d=6
  // Denser networks need a smaller fraction of nodes.
  const auto& sparse40 = rows[1];
  const auto& dense40 = rows[3];
  EXPECT_LT(dense40.static_25.mean, sparse40.static_25.mean);
}

TEST(Fig7RunnerTest, DynamicBeatsMoCds) {
  const auto rows = run_fig7(small_scenario(), test_policy(), 2027);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_LT(r.dynamic_25.mean, r.mo_cds_broadcast.mean)
        << "n=" << r.nodes << " d=" << r.degree;
    EXPECT_LT(r.dynamic_3.mean, r.mo_cds_broadcast.mean);
  }
}

TEST(Fig8RunnerTest, DynamicBeatsStatic) {
  const auto rows = run_fig8(small_scenario(), test_policy(), 2028);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_LE(r.dynamic_25.mean, r.static_25.mean * 1.01)
        << "n=" << r.nodes << " d=" << r.degree;
    EXPECT_LE(r.dynamic_3.mean, r.static_3.mean * 1.01);
  }
}

TEST(ReportTest, RendersAllSeries) {
  const auto policy = test_policy();
  const auto scenario = small_scenario();
  const auto r6 = run_fig6(scenario, policy, 1);
  const auto out6 = render_fig6(r6);
  EXPECT_NE(out6.find("Figure 6"), std::string::npos);
  EXPECT_NE(out6.find("MO_CDS"), std::string::npos);
  EXPECT_NE(out6.find("d = 6"), std::string::npos);
  EXPECT_NE(out6.find("d = 18"), std::string::npos);

  const auto r7 = run_fig7(scenario, policy, 1);
  EXPECT_NE(render_fig7(r7).find("dynamic 2.5-hop"), std::string::npos);
  const auto r8 = run_fig8(scenario, policy, 1);
  EXPECT_NE(render_fig8(r8).find("static 3-hop"), std::string::npos);
}

TEST(ReportTest, CsvMirrorsRows) {
  const auto policy = test_policy();
  PaperScenario tiny;
  tiny.sizes = {20};
  tiny.degrees = {6.0};
  const auto dir = ::testing::TempDir();
  const auto r6 = run_fig6(tiny, policy, 3);
  write_fig6_csv(r6, dir + "fig6.csv");
  const auto r7 = run_fig7(tiny, policy, 3);
  write_fig7_csv(r7, dir + "fig7.csv");
  const auto r8 = run_fig8(tiny, policy, 3);
  write_fig8_csv(r8, dir + "fig8.csv");
  std::ifstream in(dir + "fig6.csv");
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "nodes,degree,static25_mean,static25_ci,static3_mean,"
            "static3_ci,mocds_mean,mocds_ci,replications,converged");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row.substr(0, 5), "20,6,");
}

}  // namespace
}  // namespace manet::exp
