// Tests for the incremental backbone maintenance engine (src/incr).
//
// The load-bearing suites are the oracle equivalence runs: hundreds of
// mobility ticks where the pipeline itself asserts, after every tick,
// that the incrementally repaired adjacency, clustering, neighbor
// tables, coverage sets, gateway selections and CDS are bit-identical
// to a from-scratch rebuild over the current positions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cluster/lcc.hpp"
#include "cluster/lowest_id.hpp"
#include "common/rng.hpp"
#include "exp/churn.hpp"
#include "geom/unit_disk.hpp"
#include "graph/dynamic_adjacency.hpp"
#include "incr/cluster_repair.hpp"
#include "incr/delta_tracker.hpp"
#include "incr/edge_delta.hpp"
#include "incr/pipeline.hpp"
#include "incr/worker_pool.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/waypoint.hpp"

namespace manet::incr {
namespace {

std::vector<geom::Point> random_layout(std::size_t n, Rng& rng) {
  std::vector<geom::Point> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  return pts;
}

TEST(DynamicAdjacencyTest, MirrorsEditsAndFreezesToCsr) {
  graph::DynamicAdjacency adj(5);
  EXPECT_EQ(adj.order(), 5u);
  EXPECT_EQ(adj.edge_count(), 0u);
  EXPECT_TRUE(adj.add_edge(1, 3));
  EXPECT_FALSE(adj.add_edge(3, 1));  // duplicate
  EXPECT_TRUE(adj.add_edge(1, 2));
  EXPECT_TRUE(adj.has_edge(2, 1));
  EXPECT_EQ(adj.degree(1), 2u);
  EXPECT_TRUE(adj.remove_edge(3, 1));
  EXPECT_FALSE(adj.remove_edge(3, 1));  // already gone
  EXPECT_EQ(adj.edge_count(), 1u);
  const graph::Graph g = adj.freeze();
  EXPECT_EQ(g.edges(), (std::vector<std::pair<NodeId, NodeId>>{{1, 2}}));
  EXPECT_THROW(adj.add_edge(2, 2), std::invalid_argument);
}

TEST(DynamicAdjacencyTest, RoundTripsAnExistingGraph) {
  Rng rng(21);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 60;
  cfg.range = geom::range_for_average_degree(8.0, 60, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const graph::DynamicAdjacency adj(net->graph);
  EXPECT_EQ(adj.edge_count(), net->graph.edge_count());
  EXPECT_EQ(adj.freeze().edges(), net->graph.edges());
}

TEST(EdgeDeltaTest, DiffGraphsFindsExactChanges) {
  const auto before = graph::make_graph(5, {{0, 1}, {1, 2}, {3, 4}});
  const auto after = graph::make_graph(5, {{0, 1}, {2, 3}, {3, 4}});
  const EdgeDelta delta = diff_graphs(before, after);
  EXPECT_EQ(delta.added, (std::vector<std::pair<NodeId, NodeId>>{{2, 3}}));
  EXPECT_EQ(delta.removed, (std::vector<std::pair<NodeId, NodeId>>{{1, 2}}));
  EXPECT_EQ(delta.touched, (NodeSet{1, 2, 3}));
  EXPECT_EQ(delta.link_changes(), 2u);
  EXPECT_FALSE(delta.empty());
  EXPECT_TRUE(diff_graphs(before, before).empty());
}

TEST(DeltaTrackerTest, TracksUnitDiskGraphUnderTeleports) {
  Rng rng(33);
  const std::size_t n = 80;
  const double range = geom::range_for_average_degree(8.0, n, 100, 100);
  auto positions = random_layout(n, rng);
  DeltaTracker tracker(positions, range, 100, 100);
  EXPECT_EQ(tracker.adjacency().freeze().edges(),
            geom::unit_disk_graph(positions, range).edges());

  for (int round = 0; round < 40; ++round) {
    // Teleport a handful of nodes anywhere in the space — the worst case
    // for a tracker (arbitrary cell migrations), impossible for gradual
    // motion to cover.
    const std::size_t movers = 1 + rng.index(5);
    for (std::size_t j = 0; j < movers; ++j) {
      const auto v = static_cast<NodeId>(rng.index(n));
      const geom::Point p{rng.uniform(0, 100), rng.uniform(0, 100)};
      positions[v] = p;
      tracker.stage_move(v, p);
    }
    const EdgeDelta delta = tracker.commit();
    const auto expected = geom::unit_disk_graph(positions, range).edges();
    ASSERT_EQ(tracker.adjacency().freeze().edges(), expected)
        << "overlay diverged at round " << round;
    // The delta must be internally consistent with the overlay it built.
    for (const auto& [u, w] : delta.added)
      EXPECT_TRUE(tracker.adjacency().has_edge(u, w));
    for (const auto& [u, w] : delta.removed)
      EXPECT_FALSE(tracker.adjacency().has_edge(u, w));
  }
}

void expect_adjacency_matches(const DeltaTracker& tracker,
                              const std::vector<geom::Point>& positions,
                              double range, int round) {
  ASSERT_EQ(tracker.adjacency().freeze().edges(),
            geom::unit_disk_graph(positions, range).edges())
      << "overlay diverged at round " << round;
}

// Two trackers over the same move stream, one per cell-index mode; the
// sparse interned index must report the identical delta and converge to
// the identical overlay, round for round. (Sparse keeps the unclamped
// lattice, so the cell *geometry* may differ — the produced graph and
// deltas may not.)
struct TrackerPair {
  TrackerPair(const std::vector<geom::Point>& positions, double range)
      : dense(positions, range, 100, 100, geom::GridIndex::kDense),
        sparse(positions, range, 100, 100, geom::GridIndex::kSparse) {}

  void stage(NodeId v, geom::Point p) {
    dense.stage_move(v, p);
    sparse.stage_move(v, p);
  }

  void commit_and_check(const std::vector<geom::Point>& positions,
                        double range, int round) {
    const EdgeDelta d = dense.commit();
    const EdgeDelta s = sparse.commit();
    EXPECT_EQ(d.added, s.added) << "round " << round;
    EXPECT_EQ(d.removed, s.removed) << "round " << round;
    EXPECT_EQ(d.touched, s.touched) << "round " << round;
    expect_adjacency_matches(dense, positions, range, round);
    expect_adjacency_matches(sparse, positions, range, round);
  }

  DeltaTracker dense;
  DeltaTracker sparse;
};

TEST(DeltaTrackerPropertyTest, CellBoundaryOscillation) {
  // Half the population parked on a vertical cell edge, nudged across it
  // and back every commit: maximal cell-migration churn from near-zero
  // motion, the worst case for the bucket bookkeeping (and for the
  // sparse index's intern table, which keeps absorbing new cells).
  Rng rng(501);
  const std::size_t n = 60;
  const double range = 10.0;
  auto positions = random_layout(n, rng);
  TrackerPair pair(positions, range);
  for (int round = 0; round < 60; ++round) {
    for (NodeId v = 0; v < n; v += 2) {
      const double edge = std::round(positions[v].x / range) * range;
      const double eps = (round % 2 == 0) ? 1e-7 : -1e-7;
      positions[v].x = std::clamp(edge + eps, 0.0, 100.0);
      pair.stage(v, positions[v]);
    }
    pair.commit_and_check(positions, range, round);
  }
}

TEST(DeltaTrackerPropertyTest, MassTeleportAllNodes) {
  // Every node teleports every commit — nothing incremental left to
  // exploit, the overlay must still equal the from-scratch graph.
  Rng rng(502);
  const std::size_t n = 120;
  const double range = geom::range_for_average_degree(8.0, n, 100, 100);
  auto positions = random_layout(n, rng);
  DeltaTracker tracker(positions, range, 100, 100);
  DeltaTracker sparse(positions, range, 100, 100, geom::GridIndex::kSparse);
  RegionPartition regions;
  RegionPartition sparse_regions;
  for (int round = 0; round < 25; ++round) {
    for (NodeId v = 0; v < n; ++v) {
      positions[v] = {rng.uniform(0, 100), rng.uniform(0, 100)};
      tracker.stage_move(v, positions[v]);
      sparse.stage_move(v, positions[v]);
    }
    tracker.commit(&regions);
    sparse.commit(&sparse_regions);
    expect_adjacency_matches(tracker, positions, range, round);
    expect_adjacency_matches(sparse, positions, range, round);
    EXPECT_GE(regions.count, 1u);
    EXPECT_GE(sparse_regions.count, 1u);
  }
}

TEST(DeltaTrackerPropertyTest, AllNodesIntoOneCell) {
  // The density extremes: everyone converges into one cell (a clique in
  // one bucket — the sparse index down to a single interned key), then
  // scatters back out.
  Rng rng(503);
  const std::size_t n = 80;
  const double range = 10.0;
  auto positions = random_layout(n, rng);
  TrackerPair pair(positions, range);
  for (int round = 0; round < 6; ++round) {
    for (NodeId v = 0; v < n; ++v) {
      positions[v] =
          (round % 2 == 0)
              ? geom::Point{55.0 + rng.uniform(0, 4), 55.0 + rng.uniform(0, 4)}
              : geom::Point{rng.uniform(0, 100), rng.uniform(0, 100)};
      pair.stage(v, positions[v]);
    }
    pair.commit_and_check(positions, range, round);
  }
}

TEST(DeltaTrackerPropertyTest, SparseSlotCompactionBoundsInternTable) {
  // A marching flock over the sparse index: every round the whole
  // population teleports into a fresh patch of the world, abandoning
  // its old cells. Without compaction the intern table accumulates one
  // slot per cell ever visited; with it, slot count must stay within
  // the compaction threshold of the live cell count — while the overlay
  // keeps matching the from-scratch graph exactly.
  Rng rng(506);
  const std::size_t n = 60;
  const double range = 2.0;  // 500x500-cell lattice — sparse territory
  std::vector<geom::Point> positions;
  for (std::size_t i = 0; i < n; ++i)
    positions.push_back({rng.uniform(0, 8), rng.uniform(0, 8)});
  DeltaTracker tracker(positions, range, 1000, 1000,
                       geom::GridIndex::kSparse);
  for (int round = 0; round < 80; ++round) {
    const double ox = rng.uniform(0, 992);
    const double oy = rng.uniform(0, 992);
    for (NodeId v = 0; v < n; ++v) {
      positions[v] = {ox + rng.uniform(0, 8), oy + rng.uniform(0, 8)};
      tracker.stage_move(v, positions[v]);
    }
    tracker.commit();
    expect_adjacency_matches(tracker, positions, range, round);
    ASSERT_LE(tracker.cell_slots(), 4 * tracker.occupied_cells() + 64)
        << "intern table leaked abandoned slots at round " << round;
  }
  EXPECT_GT(tracker.compactions(), 0u);
  // Occupancy accounting stayed truthful: the flock fits in few cells.
  EXPECT_LE(tracker.occupied_cells(), n);
  EXPECT_GE(tracker.occupied_cells(), 1u);
}

TEST(DeltaTrackerTest, DeferredCommitMatchesImmediate) {
  // defer_adjacency splits commit into scan + apply_delta; the delta
  // and the post-apply overlay must be identical to the immediate path,
  // with and without a pool (the pipelined engine relies on this).
  Rng rng(507);
  const std::size_t n = 150;
  const double range = geom::range_for_average_degree(8.0, n, 100, 100);
  auto positions = random_layout(n, rng);
  DeltaTracker immediate(positions, range, 100, 100);
  DeltaTracker deferred(positions, range, 100, 100);
  WorkerPool pool(4);
  for (int round = 0; round < 40; ++round) {
    const std::size_t movers = 1 + rng.index(12);
    for (std::size_t j = 0; j < movers; ++j) {
      const auto v = static_cast<NodeId>(rng.index(n));
      positions[v] = {rng.uniform(0, 100), rng.uniform(0, 100)};
      immediate.stage_move(v, positions[v]);
      deferred.stage_move(v, positions[v]);
    }
    const EdgeDelta base = immediate.commit();
    CommitOptions opts;
    opts.defer_adjacency = true;
    if (round % 2 == 1) opts.pool = &pool;  // alternate serial / parallel
    const EdgeDelta delta = deferred.commit(opts);
    EXPECT_EQ(delta.added, base.added) << "round " << round;
    EXPECT_EQ(delta.removed, base.removed) << "round " << round;
    EXPECT_EQ(delta.touched, base.touched) << "round " << round;
    // Before apply_delta the deferred overlay still shows the previous
    // round's topology; after it, the current one.
    deferred.apply_delta(delta);
    expect_adjacency_matches(deferred, positions, range, round);
  }
}

TEST(DeltaTrackerTest, StreamingBuildMatchesBuilderPath) {
  // The streaming counting-sweep cold build must seed the tracker with
  // the exact same adjacency as the GraphBuilder path, in both index
  // modes.
  Rng rng(505);
  const std::size_t n = 150;
  const double range = geom::range_for_average_degree(8.0, n, 100, 100);
  const auto positions = random_layout(n, rng);
  const auto expected = geom::unit_disk_graph(positions, range).edges();
  for (const auto index : {geom::GridIndex::kDense, geom::GridIndex::kSparse}) {
    DeltaTracker streamed(positions, range, 100, 100, index, true);
    EXPECT_EQ(streamed.adjacency().freeze().edges(), expected);
  }
}

TEST(DeltaTrackerTest, CellsScannedCountsDistinctCells) {
  // Two movers in the same cell share one 3x3 dirty block; the counter
  // reports distinct cells, not blocks-with-multiplicity.
  std::vector<geom::Point> pts{{55, 55}, {54, 54}, {5, 5}};
  DeltaTracker tracker(pts, 10.0, 100, 100);
  tracker.stage_move(0, {55.5, 55});
  tracker.stage_move(1, {54.5, 54});
  tracker.commit();
  EXPECT_EQ(tracker.last_cells_scanned(), 9u);
}

void region_partition_soak(geom::GridIndex index, std::uint64_t seed) {
  // The S30 contract: per-region deltas partition the tick delta exactly
  // (every changed edge, both endpoints, in one region) and core cells
  // of distinct regions stay >= 2*kRegionGrowthCells+1 grid cells apart
  // in Chebyshev distance. Holds in every index mode — the sparse index
  // keeps the unclamped lattice, so its cell keys differ from the dense
  // run's, but the partition invariants are geometry-relative.
  Rng rng(seed);
  const std::size_t n = 400;
  const double range = geom::range_for_average_degree(6.0, n, 100, 100);
  auto positions = random_layout(n, rng);
  DeltaTracker tracker(positions, range, 100, 100, index);
  RegionPartition parts;
  const std::size_t min_sep = 2 * kRegionGrowthCells + 1;
  for (int round = 0; round < 40; ++round) {
    const std::size_t movers = 1 + rng.index(8);
    for (std::size_t j = 0; j < movers; ++j) {
      const auto v = static_cast<NodeId>(rng.index(n));
      positions[v] = {rng.uniform(0, 100), rng.uniform(0, 100)};
      tracker.stage_move(v, positions[v]);
    }
    const EdgeDelta delta = tracker.commit(&parts);
    ASSERT_GE(parts.count, 1u);
    ASSERT_EQ(parts.deltas.size(), parts.count);
    ASSERT_EQ(parts.core_cells.size(), parts.count);

    // Per-region slices partition the global delta.
    std::vector<std::pair<NodeId, NodeId>> added, removed;
    NodeSet touched;
    for (const EdgeDelta& slice : parts.deltas) {
      added.insert(added.end(), slice.added.begin(), slice.added.end());
      removed.insert(removed.end(), slice.removed.begin(),
                     slice.removed.end());
      touched.insert(touched.end(), slice.touched.begin(),
                     slice.touched.end());
    }
    std::sort(added.begin(), added.end());
    std::sort(removed.begin(), removed.end());
    normalize(touched);
    EXPECT_EQ(added, delta.added);
    EXPECT_EQ(removed, delta.removed);
    EXPECT_EQ(touched, delta.touched);

    // Pairwise core-cell separation.
    for (std::size_t i = 0; i < parts.count; ++i) {
      EXPECT_FALSE(parts.core_cells[i].empty());
      for (std::size_t j = i + 1; j < parts.count; ++j) {
        for (const std::uint64_t a : parts.core_cells[i]) {
          for (const std::uint64_t b : parts.core_cells[j]) {
            const auto dc = std::max(a % parts.cols, b % parts.cols) -
                            std::min(a % parts.cols, b % parts.cols);
            const auto dr = std::max(a / parts.cols, b / parts.cols) -
                            std::min(a / parts.cols, b / parts.cols);
            ASSERT_GE(std::max<std::size_t>(dc, dr), min_sep)
                << "regions " << i << " and " << j << " too close";
          }
        }
      }
    }
  }
}

TEST(DeltaTrackerPropertyTest, RegionPartitionIsValidAndSeparated) {
  region_partition_soak(geom::GridIndex::kAuto, 504);
}

TEST(DeltaTrackerPropertyTest, RegionPartitionIsValidAndSeparatedSparse) {
  region_partition_soak(geom::GridIndex::kSparse, 506);
}

TEST(DeltaTrackerPropertyTest, TieredGrowthPartitionsExactlyAndShrinksScopes) {
  // Two-tier paint growth (the message engine's 7/4/1 head/member/quiet
  // tiers): the per-region slices must still partition the delta
  // exactly, every touched node must land in its region's scope, and
  // tiering can only shrink scopes relative to uniform growth. With
  // every node a head, tiering degenerates to the uniform partition.
  Rng rng(907);
  const std::size_t n = 400;
  const double range = geom::range_for_average_degree(6.0, n, 100, 100);
  auto positions = random_layout(n, rng);
  DeltaTracker uniform(positions, range, 100, 100);
  DeltaTracker tiered(positions, range, 100, 100);
  DeltaTracker all_heads(positions, range, 100, 100);

  std::vector<NodeId> nobody_head(n), everybody_head(n);
  for (NodeId v = 0; v < n; ++v) {
    nobody_head[v] = v == 0 ? 1 : 0;  // head_of[v] != v for every v
    everybody_head[v] = v;
  }

  RegionPartition pu, pt, ph;
  CommitOptions base;
  base.growth_cells = 7;
  base.region_scopes = true;
  for (int round = 0; round < 30; ++round) {
    const std::size_t movers = 1 + rng.index(8);
    for (std::size_t j = 0; j < movers; ++j) {
      const auto v = static_cast<NodeId>(rng.index(n));
      positions[v] = {rng.uniform(0, 100), rng.uniform(0, 100)};
      uniform.stage_move(v, positions[v]);
      tiered.stage_move(v, positions[v]);
      all_heads.stage_move(v, positions[v]);
    }
    CommitOptions uopts = base;
    uopts.regions = &pu;
    CommitOptions topts = base;
    topts.regions = &pt;
    topts.head_of = nobody_head;
    topts.member_growth_cells = 4;
    topts.quiet_growth_cells = 1;
    CommitOptions hopts = topts;
    hopts.regions = &ph;
    hopts.head_of = everybody_head;
    const EdgeDelta du = uniform.commit(uopts);
    const EdgeDelta dt = tiered.commit(topts);
    const EdgeDelta dh = all_heads.commit(hopts);
    ASSERT_EQ(dt.added, du.added);
    ASSERT_EQ(dt.removed, du.removed);

    // Tiered slices still partition the delta, and every touched node
    // of a slice sits in that region's scope.
    std::vector<std::pair<NodeId, NodeId>> added, removed;
    for (std::size_t r = 0; r < pt.count; ++r) {
      const EdgeDelta& slice = pt.deltas[r];
      added.insert(added.end(), slice.added.begin(), slice.added.end());
      removed.insert(removed.end(), slice.removed.begin(),
                     slice.removed.end());
      for (const NodeId v : slice.touched)
        ASSERT_TRUE(std::binary_search(pt.scopes[r].begin(),
                                       pt.scopes[r].end(), v))
            << "touched node " << v << " outside its region scope";
    }
    std::sort(added.begin(), added.end());
    std::sort(removed.begin(), removed.end());
    EXPECT_EQ(added, dt.added);
    EXPECT_EQ(removed, dt.removed);

    // Member/quiet paints are subsets of the uniform paint, so regions
    // can only split (never merge further) and total scope can only
    // shrink.
    std::size_t scope_u = 0, scope_t = 0;
    for (const auto& s : pu.scopes) scope_u += s.size();
    for (const auto& s : pt.scopes) scope_t += s.size();
    EXPECT_LE(scope_t, scope_u);
    EXPECT_GE(pt.count, pu.count);

    // All-heads tiering is the uniform partition, bit for bit.
    ASSERT_EQ(ph.count, pu.count);
    for (std::size_t r = 0; r < pu.count; ++r) {
      EXPECT_EQ(ph.scopes[r], pu.scopes[r]);
      EXPECT_EQ(ph.core_cells[r], pu.core_cells[r]);
      EXPECT_EQ(ph.deltas[r].added, pu.deltas[r].added);
      EXPECT_EQ(ph.deltas[r].removed, pu.deltas[r].removed);
    }
  }
}

TEST(DeltaTrackerPropertyTest, TeleportOldAndNewBlocksShareOneRegion) {
  // A teleporting node's removed edges live near its old position and
  // its added edges near the new one — both must land in one region so
  // its repair never splits across shards.
  std::vector<geom::Point> pts{{5, 5}, {7, 5}, {92, 95}, {95, 95}, {50, 50}};
  const double range = 10.0;
  DeltaTracker tracker(pts, range, 100, 100);
  RegionPartition parts;
  // Node 0 teleports from the {0,1} corner to the {2,3} corner.
  tracker.stage_move(0, {93, 93});
  const EdgeDelta delta = tracker.commit(&parts);
  EXPECT_FALSE(delta.added.empty());
  EXPECT_FALSE(delta.removed.empty());
  EXPECT_EQ(parts.count, 1u);
  EXPECT_EQ(parts.deltas[0].added, delta.added);
  EXPECT_EQ(parts.deltas[0].removed, delta.removed);
}

TEST(DeltaTrackerTest, RestagingSameNodeKeepsLastPosition) {
  std::vector<geom::Point> pts{{10, 10}, {20, 10}, {90, 90}};
  DeltaTracker tracker(pts, 15.0, 100, 100);
  EXPECT_TRUE(tracker.adjacency().has_edge(0, 1));
  tracker.stage_move(2, {50, 50});
  tracker.stage_move(2, {22, 10});  // overrides: ends adjacent to 0 and 1
  EXPECT_EQ(tracker.staged_count(), 1u);
  const EdgeDelta delta = tracker.commit();
  EXPECT_EQ(delta.added,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 2}, {1, 2}}));
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_EQ(tracker.positions()[2], (geom::Point{22, 10}));
}

TEST(ClusterRepairTest, MatchesFullLccUpdateOnRandomEdgeFlips) {
  Rng rng(55);
  const std::size_t n = 70;
  const double range = geom::range_for_average_degree(7.0, n, 100, 100);
  const auto positions = random_layout(n, rng);
  const auto g0 = geom::unit_disk_graph(positions, range);

  graph::DynamicAdjacency adj(g0);
  cluster::Clustering c = cluster::lowest_id_clustering(g0);
  graph::NodeBitset head_bits(n);
  for (const NodeId h : c.heads) head_bits.set(h);

  for (int round = 0; round < 300; ++round) {
    // Flip a random pair: remove the edge if present, add it otherwise.
    auto u = static_cast<NodeId>(rng.index(n));
    auto w = static_cast<NodeId>(rng.index(n));
    if (u == w) continue;
    if (u > w) std::swap(u, w);
    EdgeDelta delta;
    if (adj.has_edge(u, w)) {
      adj.remove_edge(u, w);
      delta.removed.push_back({u, w});
    } else {
      adj.add_edge(u, w);
      delta.added.push_back({u, w});
    }
    delta.touched = {u, w};

    const cluster::Clustering previous = c;
    repair_clustering(adj, delta, c, head_bits);

    cluster::LccDelta full_delta;
    const cluster::Clustering full =
        cluster::lcc_update(adj.freeze(), previous, &full_delta);
    ASSERT_EQ(c, full) << "repair diverged from lcc_update at round "
                       << round;
    for (const NodeId v : c.heads) EXPECT_TRUE(head_bits.test(v));
  }
}

TEST(IncrementalBackboneTest, NoOpTickProducesZeroStats) {
  Rng rng(77);
  const auto positions = random_layout(50, rng);
  const double range = geom::range_for_average_degree(8.0, 50, 100, 100);
  IncrementalPipeline pipeline(positions, range, 100, 100,
                               {core::CoverageMode::kTwoPointFiveHop, true});
  const TickStats stats = pipeline.tick();  // nothing staged
  EXPECT_EQ(stats.link_changes, 0u);
  EXPECT_EQ(stats.head_changes, 0u);
  EXPECT_EQ(stats.role_changes, 0u);
  EXPECT_EQ(stats.backbone_changes, 0u);
  EXPECT_EQ(stats.coverage_changes, 0u);
  EXPECT_EQ(stats.rows_recomputed, 0u);
  // Staging a move onto the identical position is also a no-op delta.
  pipeline.stage_move(3, pipeline.positions()[3]);
  EXPECT_EQ(pipeline.tick().link_changes, 0u);
}

/// Runs `ticks` random-waypoint ticks with the pipeline's oracle mode on:
/// each tick MANET_REQUIREs bitwise equality of every maintained
/// structure against the full rebuild, so the assertions live inside the
/// engine and any divergence fails loudly here.
void run_waypoint_oracle(std::size_t n, double degree, std::size_t ticks,
                         core::CoverageMode mode, std::uint64_t seed) {
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(degree, n, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());

  mobility::WaypointModel model(net->positions, mobility::WaypointConfig{},
                                Rng(derive_seed(seed, 1, 0)));
  IncrementalPipeline pipeline(net->positions, cfg.range, 100, 100,
                               {mode, /*oracle_check=*/true});
  Rng pick(derive_seed(seed, 2, 0));
  for (std::size_t t = 0; t < ticks; ++t) {
    // ~3% of nodes move per tick (at least one).
    const std::size_t movers = std::max<std::size_t>(1, n / 32);
    std::vector<NodeId> moved;
    for (std::size_t j = 0; j < movers; ++j)
      moved.push_back(static_cast<NodeId>(pick.index(n)));
    model.step_nodes(moved, 1.0);
    for (const NodeId v : moved)
      pipeline.stage_move(v, model.positions()[v]);
    ASSERT_NO_THROW(pipeline.tick()) << "oracle mismatch at tick " << t;
  }
}

TEST(IncrementalOracleTest, Waypoint100Sparse) {
  run_waypoint_oracle(100, 6.0, 200, core::CoverageMode::kTwoPointFiveHop,
                      101);
}

TEST(IncrementalOracleTest, Waypoint100Dense) {
  run_waypoint_oracle(100, 18.0, 200, core::CoverageMode::kThreeHop, 102);
}

TEST(IncrementalOracleTest, Waypoint500Sparse) {
  run_waypoint_oracle(500, 6.0, 200, core::CoverageMode::kTwoPointFiveHop,
                      103);
}

TEST(IncrementalOracleTest, Waypoint500Dense) {
  run_waypoint_oracle(500, 18.0, 200, core::CoverageMode::kThreeHop, 104);
}

TEST(IncrementalOracleTest, RandomDirectionModel) {
  Rng rng(202);
  const std::size_t n = 150;
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(8.0, n, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  mobility::RandomDirectionModel model(
      net->positions, mobility::RandomDirectionConfig{}, Rng(203));
  IncrementalPipeline pipeline(
      net->positions, cfg.range, 100, 100,
      {core::CoverageMode::kTwoPointFiveHop, /*oracle_check=*/true});
  Rng pick(204);
  for (std::size_t t = 0; t < 200; ++t) {
    std::vector<NodeId> moved;
    for (std::size_t j = 0; j < 5; ++j)
      moved.push_back(static_cast<NodeId>(pick.index(n)));
    model.step_nodes(moved, 1.0);
    for (const NodeId v : moved)
      pipeline.stage_move(v, model.positions()[v]);
    ASSERT_NO_THROW(pipeline.tick()) << "oracle mismatch at tick " << t;
  }
}

TEST(ChurnExperimentTest, RunsWithOracleCheckAndReportsSpeedup) {
  exp::ChurnConfig config;
  config.nodes = 120;
  config.degree = 6.0;
  config.ticks = 30;
  config.move_fraction = 0.02;
  config.seed = 7;
  config.oracle_check = true;  // every tick cross-checked inside run_churn
  const exp::ChurnResult r = exp::run_churn(config);
  EXPECT_EQ(r.ticks, 30u);
  EXPECT_GT(r.incremental_ms_per_tick, 0.0);
  EXPECT_GT(r.rebuild_ms_per_tick, 0.0);
  EXPECT_GT(r.speedup, 0.0);
  EXPECT_EQ(exp::model_name(config.model), "waypoint");
  EXPECT_EQ(exp::model_name(exp::ChurnConfig::Model::kRandomDirection),
            "direction");
}

}  // namespace
}  // namespace manet::incr
