// Unit + property tests for the greedy gateway selection process, pinned
// to the paper's GATEWAY(1..4) walkthrough.
#include "core/gateway_selection.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geom/unit_disk.hpp"
#include "paper_fixtures.hpp"

namespace manet::core {
namespace {

class Figure3Selection : public ::testing::Test {
 protected:
  graph::Graph g_ = testing::paper_figure3_network();
  cluster::Clustering c_ = cluster::lowest_id_clustering(g_);
  NeighborTables t_ =
      build_neighbor_tables(g_, c_, CoverageMode::kTwoPointFiveHop);
  std::vector<Coverage> cov_ = build_all_coverage(g_, c_, t_);

  GatewaySelection select(NodeId head) {
    return select_gateways(g_, c_, t_, head, cov_[head]);
  }
};

TEST_F(Figure3Selection, Gateway1MatchesPaper) {
  // Paper: GATEWAY(1) = {6, 7} -> ours {5, 6}.
  EXPECT_EQ(select(0).gateways, (NodeSet{5, 6}));
}

TEST_F(Figure3Selection, Gateway2MatchesPaper) {
  // Paper: GATEWAY(2) = {6, 8} -> ours {5, 7}.
  EXPECT_EQ(select(1).gateways, (NodeSet{5, 7}));
}

TEST_F(Figure3Selection, Gateway3MatchesPaper) {
  // Paper: GATEWAY(3) = {7, 8, 9} -> ours {6, 7, 8}.
  EXPECT_EQ(select(2).gateways, (NodeSet{6, 7, 8}));
}

TEST_F(Figure3Selection, Gateway4UsesIndirectTieBreak) {
  // Paper: "node 4 selects node 9, not node 10, as a gateway to directly
  // cover node 3 because node 9 can also indirectly cover node 1."
  // Ours: head 3 picks 8 (not 9) and via-node 4 -> GATEWAY(4)={5,9}
  // becomes {4, 8}.
  const auto sel = select(3);
  EXPECT_EQ(sel.gateways, (NodeSet{4, 8}));
  ASSERT_EQ(sel.steps.size(), 1u);
  EXPECT_EQ(sel.steps[0].gateway, 8u);
  EXPECT_EQ(sel.steps[0].direct_covered, (NodeSet{2}));
  ASSERT_EQ(sel.steps[0].indirect_covered.size(), 1u);
  EXPECT_EQ(sel.steps[0].indirect_covered[0].head, 0u);
  EXPECT_EQ(sel.steps[0].indirect_covered[0].via, 4u);
  EXPECT_TRUE(sel.leftover_pairs.empty());
}

TEST_F(Figure3Selection, SelectionsValidate) {
  for (NodeId h : c_.heads)
    EXPECT_EQ(validate_selection(g_, c_, h, cov_[h], select(h)), "")
        << "head " << h;
}

TEST_F(Figure3Selection, EmptyTargetsSelectNothing) {
  const auto sel = select_gateways(g_, c_, t_, 0, Coverage{});
  EXPECT_TRUE(sel.gateways.empty());
  EXPECT_TRUE(sel.steps.empty());
}

TEST_F(Figure3Selection, PrunedTargetsSelectSubset) {
  // Head 2 with only target {3} remaining (the dynamic-broadcast case
  // from the paper's illustration) selects exactly node 8 (paper 9).
  Coverage pruned;
  pruned.two_hop = {3};
  EXPECT_EQ(select_gateways(g_, c_, t_, 2, pruned).gateways, (NodeSet{8}));
}

TEST_F(Figure3Selection, RejectsNonHead) {
  EXPECT_THROW(select_gateways(g_, c_, t_, 9, cov_[2]),
               std::invalid_argument);
}

TEST(SelectionGreedyTest, PrefersLargerDirectCover) {
  // Head 0 with leaves 1,2; heads 5,6,7 two hops away. Node 1 reaches
  // 5 and 6; node 2 reaches 7 only. Wait—5,6,7 must be heads: build a
  // graph where clustering yields that shape:
  //   0-1, 0-2, 1-5, 1-6, 2-6, 2-7; 5,6,7 pairwise non-adjacent.
  // Clustering: 0 head; 1,2 join 0; 5? neighbors {1}: no head < 5
  // adjacent -> head... 5's neighbors: {1}; 1 is not head -> 5 head.
  // Likewise 6,7 heads. Node 3,4 unused -> isolated heads (allowed).
  const auto g = graph::make_graph(
      8, {{0, 1}, {0, 2}, {1, 5}, {1, 6}, {2, 6}, {2, 7}});
  const auto c = cluster::lowest_id_clustering(g);
  ASSERT_TRUE(c.is_head(0));
  ASSERT_TRUE(c.is_head(5) && c.is_head(6) && c.is_head(7));
  const auto t = build_neighbor_tables(g, c, CoverageMode::kThreeHop);
  const auto cov = build_coverage(g, c, t, 0);
  ASSERT_EQ(cov.two_hop, (NodeSet{5, 6, 7}));
  const auto sel = select_gateways(g, c, t, 0, cov);
  // Greedy: node 1 covers {5,6} (2 heads) first, then node 2 covers 7.
  ASSERT_EQ(sel.steps.size(), 2u);
  EXPECT_EQ(sel.steps[0].gateway, 1u);
  EXPECT_EQ(sel.steps[0].direct_covered, (NodeSet{5, 6}));
  EXPECT_EQ(sel.steps[1].gateway, 2u);
  EXPECT_EQ(sel.gateways, (NodeSet{1, 2}));
}

TEST(SelectionGreedyTest, LeftoverThreeHopPairSelected) {
  // Head 0 -- 1 -- 2 -- 3(head): no 2-hop heads at all, one 3-hop head.
  // Ids arranged so 3 hops apart: 0-4-5-1? Let's use explicit shape:
  // edges 0-4, 4-5, 5-1; heads: 0; 1? neighbors {5}: none smaller is
  // head -> 1 head. dist(0,1)=3.
  const auto g = graph::make_graph(6, {{0, 4}, {4, 5}, {5, 1}});
  const auto c = cluster::lowest_id_clustering(g);
  ASSERT_TRUE(c.is_head(0));
  ASSERT_TRUE(c.is_head(1));
  const auto t = build_neighbor_tables(g, c, CoverageMode::kThreeHop);
  const auto cov = build_coverage(g, c, t, 0);
  EXPECT_TRUE(cov.two_hop.empty());
  EXPECT_EQ(cov.three_hop, (NodeSet{1}));
  const auto sel = select_gateways(g, c, t, 0, cov);
  ASSERT_EQ(sel.leftover_pairs.size(), 1u);
  EXPECT_EQ(sel.leftover_pairs[0].target, 1u);
  EXPECT_EQ(sel.leftover_pairs[0].first_hop, 4u);
  EXPECT_EQ(sel.leftover_pairs[0].second_hop, 5u);
  EXPECT_EQ(sel.gateways, (NodeSet{4, 5}));
  EXPECT_EQ(validate_selection(g, c, 0, cov, sel), "");
}

TEST(SelectionGreedyTest, LeftoverPairPrefersReuse) {
  // Two 3-hop heads reachable through a shared first hop: after covering
  // one, the pair for the second should reuse the selected first hop
  // even when a smaller-id fresh pair exists.
  //   0-5, 0-4; 5-6, 6-1(head); 5-7, 7-2(head); 4-8, 8-2.
  // Heads: 0,1,2 (1: nbrs {6}; 2: nbrs {7,8}).
  const auto g = graph::make_graph(
      9, {{0, 5}, {0, 4}, {5, 6}, {6, 1}, {5, 7}, {7, 2}, {4, 8}, {8, 2}});
  const auto c = cluster::lowest_id_clustering(g);
  ASSERT_TRUE(c.is_head(1) && c.is_head(2));
  const auto t = build_neighbor_tables(g, c, CoverageMode::kThreeHop);
  const auto cov = build_coverage(g, c, t, 0);
  EXPECT_EQ(cov.three_hop, (NodeSet{1, 2}));
  const auto sel = select_gateways(g, c, t, 0, cov);
  // Target 1 forces pair (5,6). Target 2 could use fresh pair (4,8) but
  // (5,7) reuses gateway 5.
  EXPECT_EQ(sel.gateways, (NodeSet{5, 6, 7}));
  EXPECT_EQ(validate_selection(g, c, 0, cov, sel), "");
}

// ---- Property sweep: selections always cover their targets -------------

struct SelParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;
  CoverageMode mode;

  friend std::ostream& operator<<(std::ostream& os, const SelParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed,
                                    core::to_string(p.mode));
  }
};

class SelectionSweep : public ::testing::TestWithParam<SelParam> {};

TEST_P(SelectionSweep, EverySelectionCoversItsCoverageSet) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto c = cluster::lowest_id_clustering(net->graph);
  const auto t = build_neighbor_tables(net->graph, c, mode);
  for (NodeId h : c.heads) {
    const auto cov = build_coverage(net->graph, c, t, h);
    const auto sel = select_gateways(net->graph, c, t, h, cov);
    EXPECT_EQ(validate_selection(net->graph, c, h, cov, sel), "")
        << "head " << h;
    // Selected gateways are never clusterheads.
    for (NodeId v : sel.gateways) EXPECT_FALSE(c.is_head(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, SelectionSweep,
    ::testing::Values(
        SelParam{20, 6, 21, CoverageMode::kTwoPointFiveHop},
        SelParam{20, 6, 21, CoverageMode::kThreeHop},
        SelParam{40, 18, 22, CoverageMode::kTwoPointFiveHop},
        SelParam{40, 18, 22, CoverageMode::kThreeHop},
        SelParam{60, 6, 23, CoverageMode::kTwoPointFiveHop},
        SelParam{60, 6, 23, CoverageMode::kThreeHop},
        SelParam{80, 18, 24, CoverageMode::kTwoPointFiveHop},
        SelParam{80, 18, 24, CoverageMode::kThreeHop},
        SelParam{100, 6, 25, CoverageMode::kTwoPointFiveHop},
        SelParam{100, 6, 25, CoverageMode::kThreeHop},
        SelParam{100, 18, 26, CoverageMode::kTwoPointFiveHop},
        SelParam{100, 18, 26, CoverageMode::kThreeHop}));

}  // namespace
}  // namespace manet::core
