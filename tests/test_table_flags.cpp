// Unit tests for the console table renderer and the example flag parser.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/flags.hpp"
#include "common/table.hpp"

namespace manet {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"n", "size"});
  t.row({"20", "9.25"});
  t.row({"100", "31.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("n    size"), std::string::npos);
  EXPECT_NE(out.find("20   9.25"), std::string::npos);
  EXPECT_NE(out.find("100  31.5"), std::string::npos);
}

TEST(TextTableTest, NumFormatsWithPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTableTest, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, SizeCountsRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.size(), 0u);
  t.row({"x"});
  EXPECT_EQ(t.size(), 1u);
}

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValue) {
  const auto f = make_flags({"--nodes=50", "--degree=6.5"});
  EXPECT_EQ(f.get_int("nodes", 0), 50);
  EXPECT_DOUBLE_EQ(f.get_double("degree", 0.0), 6.5);
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const auto f = make_flags({});
  EXPECT_EQ(f.get("mode", "static"), "static");
  EXPECT_EQ(f.get_int("nodes", 42), 42);
  EXPECT_FALSE(f.get_bool("verbose"));
}

TEST(FlagsTest, BareFlagIsTrue) {
  const auto f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_TRUE(f.has("verbose"));
}

TEST(FlagsTest, ExplicitFalse) {
  const auto f = make_flags({"--verbose=false", "--trace=0"});
  EXPECT_FALSE(f.get_bool("verbose", true));
  EXPECT_FALSE(f.get_bool("trace", true));
}

TEST(FlagsTest, PositionalArguments) {
  const auto f = make_flags({"input.txt", "--k=1", "output.txt"});
  ASSERT_EQ(f.positional_count(), 2u);
  EXPECT_EQ(f.positional(0), "input.txt");
  EXPECT_EQ(f.positional(1), "output.txt");
  EXPECT_THROW(f.positional(2), std::invalid_argument);
}

TEST(FlagsTest, RejectsMalformedNumbers) {
  const auto f = make_flags({"--nodes=abc", "--degree=1.2.3"});
  EXPECT_THROW(f.get_int("nodes", 0), std::invalid_argument);
  EXPECT_THROW(f.get_double("degree", 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace manet
