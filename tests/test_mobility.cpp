// Unit tests for random-waypoint mobility and maintenance-churn metrics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geom/unit_disk.hpp"
#include "mobility/maintenance.hpp"
#include "mobility/waypoint.hpp"

namespace manet::mobility {
namespace {

std::vector<geom::Point> random_layout(std::size_t n, Rng& rng) {
  std::vector<geom::Point> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  return pts;
}

TEST(WaypointTest, NodesStayInsideArea) {
  Rng rng(1);
  WaypointModel model(random_layout(30, rng), WaypointConfig{}, Rng(2));
  for (int step = 0; step < 200; ++step) {
    model.step(0.5);
    for (const auto& p : model.positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 100.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 100.0);
    }
  }
}

TEST(WaypointTest, NodesActuallyMove) {
  Rng rng(3);
  const auto initial = random_layout(10, rng);
  WaypointModel model(initial, WaypointConfig{}, Rng(4));
  model.step(5.0);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < initial.size(); ++i)
    if (!(model.positions()[i] == initial[i])) ++moved;
  EXPECT_GT(moved, 5u);
}

TEST(WaypointTest, SpeedBoundsRespected) {
  Rng rng(5);
  const auto initial = random_layout(20, rng);
  WaypointConfig cfg;
  cfg.min_speed = 1.0;
  cfg.max_speed = 2.0;
  cfg.pause_time = 0.0;
  WaypointModel model(initial, cfg, Rng(6));
  auto prev = model.positions();
  for (int step = 0; step < 50; ++step) {
    model.step(0.1);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      // Straight-line displacement cannot exceed max_speed * dt (plus a
      // waypoint turn, which only shortens the distance traveled).
      EXPECT_LE(geom::distance(prev[i], model.positions()[i]),
                cfg.max_speed * 0.1 + 1e-9);
    }
    prev = model.positions();
  }
}

TEST(WaypointTest, PauseHoldsPosition) {
  // With an enormous pause time every node freezes at its first arrival;
  // with tiny steps before that it keeps moving. Use a degenerate case:
  // min=max speed, waypoint far, then verify a paused node stays put by
  // setting speed huge so arrival happens in the first step.
  Rng rng(7);
  WaypointConfig cfg;
  cfg.min_speed = 1000.0;
  cfg.max_speed = 1000.0;
  cfg.pause_time = 1e9;
  WaypointModel model(random_layout(5, rng), cfg, Rng(8));
  model.step(1.0);  // everyone arrives and starts the long pause
  const auto frozen = model.positions();
  model.step(10.0);
  for (std::size_t i = 0; i < frozen.size(); ++i)
    EXPECT_TRUE(model.positions()[i] == frozen[i]);
}

TEST(WaypointTest, RejectsBadConfig) {
  Rng rng(9);
  WaypointConfig bad;
  bad.min_speed = 0.0;
  EXPECT_THROW(WaypointModel(random_layout(3, rng), bad, Rng(1)),
               std::invalid_argument);
  WaypointConfig inverted;
  inverted.min_speed = 3.0;
  inverted.max_speed = 1.0;
  EXPECT_THROW(WaypointModel(random_layout(3, rng), inverted, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(WaypointModel({}, WaypointConfig{}, Rng(1)),
               std::invalid_argument);
}

TEST(WaypointTest, SnapshotTracksPositions) {
  Rng rng(11);
  WaypointModel model(random_layout(40, rng), WaypointConfig{}, Rng(12));
  const auto g = model.snapshot(30.0);
  EXPECT_EQ(g.order(), 40u);
}

TEST(MaintenanceTest, IdenticalSnapshotsHaveZeroChurn) {
  Rng rng(13);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 40;
  cfg.range = geom::range_for_average_degree(8.0, 40, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto delta = compare_snapshots(net->graph, net->graph,
                                       core::CoverageMode::kTwoPointFiveHop);
  EXPECT_EQ(delta.link_changes, 0u);
  EXPECT_EQ(delta.head_changes, 0u);
  EXPECT_EQ(delta.role_changes, 0u);
  EXPECT_EQ(delta.backbone_changes, 0u);
  EXPECT_EQ(delta.coverage_changes, 0u);
  EXPECT_EQ(delta.static_maintenance(), 0u);
  EXPECT_EQ(delta.dynamic_maintenance(), 0u);
}

TEST(MaintenanceTest, CountsLinkFlips) {
  const auto before = graph::make_path(4);
  const auto after = graph::make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const auto delta = compare_snapshots(before, after,
                                       core::CoverageMode::kTwoPointFiveHop);
  EXPECT_EQ(delta.link_changes, 1u);
}

TEST(MaintenanceTest, StaticCostsAtLeastDynamic) {
  // Moving topologies: static maintenance >= dynamic maintenance always
  // (the static cost adds the backbone-membership churn on top).
  Rng rng(15);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 40;
  cfg.range = geom::range_for_average_degree(8.0, 40, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  WaypointModel model(net->positions, WaypointConfig{}, Rng(16));
  auto prev = net->graph;
  for (int step = 0; step < 10; ++step) {
    model.step(1.0);
    const auto cur = model.snapshot(cfg.range);
    const auto delta = compare_snapshots(
        prev, cur, core::CoverageMode::kTwoPointFiveHop);
    EXPECT_GE(delta.static_maintenance(), delta.dynamic_maintenance());
    prev = cur;
  }
}

TEST(MaintenanceTest, SingleNodeGraphHasZeroDelta) {
  const auto g = graph::make_graph(1, {});
  const auto delta =
      compare_snapshots(g, g, core::CoverageMode::kTwoPointFiveHop);
  EXPECT_EQ(delta.link_changes, 0u);
  EXPECT_EQ(delta.head_changes, 0u);
  EXPECT_EQ(delta.role_changes, 0u);
  EXPECT_EQ(delta.backbone_changes, 0u);
  EXPECT_EQ(delta.coverage_changes, 0u);
}

TEST(MaintenanceTest, DisconnectAndReconnectCycle) {
  // Two nodes losing and regaining their only link: the smallest possible
  // churn events, with every counter checkable by hand.
  const auto joined = graph::make_path(2);
  const auto split = graph::make_graph(2, {});

  // Disconnect: node 1 loses head 0 and must declare itself a head
  // (head, role, coverage and CDS membership all change for node 1).
  const auto down = compare_snapshots(joined, split,
                                      core::CoverageMode::kTwoPointFiveHop);
  EXPECT_EQ(down.link_changes, 1u);
  EXPECT_EQ(down.head_changes, 1u);
  EXPECT_EQ(down.role_changes, 1u);
  EXPECT_EQ(down.backbone_changes, 1u);
  EXPECT_EQ(down.coverage_changes, 1u);
  EXPECT_EQ(down.static_maintenance(), 3u);
  EXPECT_EQ(down.dynamic_maintenance(), 2u);

  // Reconnect: LCC rule 1 makes the larger-id head resign and re-affiliate
  // with head 0; head 0's (empty) coverage is unchanged.
  const auto up = compare_snapshots(split, joined,
                                    core::CoverageMode::kTwoPointFiveHop);
  EXPECT_EQ(up.link_changes, 1u);
  EXPECT_EQ(up.head_changes, 1u);
  EXPECT_EQ(up.role_changes, 1u);
  EXPECT_EQ(up.backbone_changes, 1u);
  EXPECT_EQ(up.coverage_changes, 0u);
}

TEST(MaintenanceTest, RejectsMismatchedPopulations) {
  EXPECT_THROW(compare_snapshots(graph::make_path(3), graph::make_path(4),
                                 core::CoverageMode::kThreeHop),
               std::invalid_argument);
}

}  // namespace
}  // namespace manet::mobility
