// Unit tests for running statistics and Student-t critical values.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "stats/running.hpp"
#include "stats/student_t.hpp"

namespace manet::stats {
namespace {

TEST(RunningStatsTest, MeanAndVarianceOfKnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleHasInfiniteCi) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.ci_halfwidth(0.99)));
}

TEST(RunningStatsTest, ConstantStreamHasZeroRelativeHalfwidth) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(4.0);
  EXPECT_EQ(s.ci_halfwidth(0.99), 0.0);
  EXPECT_EQ(s.relative_halfwidth(0.99), 0.0);
}

TEST(RunningStatsTest, ZeroMeanNonzeroSpreadIsInfiniteRelative) {
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_TRUE(std::isinf(s.relative_halfwidth(0.99)));
}

TEST(RunningStatsTest, CiShrinksWithSamples) {
  Rng rng(5);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(10.0 + rng.uniform(-1, 1));
  for (int i = 0; i < 1000; ++i) large.add(10.0 + rng.uniform(-1, 1));
  EXPECT_LT(large.ci_halfwidth(0.99), small.ci_halfwidth(0.99));
}

TEST(RunningStatsTest, CiCoversTrueMeanUsually) {
  // 99% CI over repeated uniform(0,1) samples should cover 0.5 nearly
  // always; we tolerate 3 misses in 100 experiments.
  Rng rng(77);
  int misses = 0;
  for (int e = 0; e < 100; ++e) {
    RunningStats s;
    for (int i = 0; i < 50; ++i) s.add(rng.uniform01());
    const double hw = s.ci_halfwidth(0.99);
    if (std::fabs(s.mean() - 0.5) > hw) ++misses;
  }
  EXPECT_LE(misses, 3);
}

TEST(RunningStatsTest, MergeEqualsBulkAccumulation) {
  Rng rng(123);
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0, 10);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(StudentTTest, MatchesTablesAtTabulatedLevels) {
  EXPECT_NEAR(student_t_critical(0.99, 1), 63.657, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 9), 3.250, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(0.90, 30), 1.697, 1e-3);
}

TEST(StudentTTest, LargeDfApproachesNormal) {
  const double z99 = normal_critical(0.99);
  EXPECT_NEAR(z99, 2.5758, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 100000), z99, 1e-3);
  // df=120 textbook value: 2.617.
  EXPECT_NEAR(student_t_critical(0.99, 120), 2.617, 5e-3);
}

TEST(StudentTTest, MonotoneDecreasingInDf) {
  double prev = student_t_critical(0.99, 1);
  for (std::size_t df = 2; df <= 200; ++df) {
    const double t = student_t_critical(0.99, df);
    EXPECT_LE(t, prev + 1e-9) << "df=" << df;
    prev = t;
  }
}

TEST(StudentTTest, RejectsBadArguments) {
  EXPECT_THROW(student_t_critical(0.0, 5), std::invalid_argument);
  EXPECT_THROW(student_t_critical(1.0, 5), std::invalid_argument);
  EXPECT_THROW(student_t_critical(0.99, 0), std::invalid_argument);
  EXPECT_THROW(normal_critical(-0.5), std::invalid_argument);
}

TEST(NormalCriticalTest, StandardValues) {
  EXPECT_NEAR(normal_critical(0.95), 1.9600, 1e-3);
  EXPECT_NEAR(normal_critical(0.90), 1.6449, 1e-3);
}

}  // namespace
}  // namespace manet::stats
