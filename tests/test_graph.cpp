// Unit tests for the CSR graph and its builders.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace manet::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.order(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(GraphTest, SingleVertexNoEdges) {
  const Graph g = GraphBuilder(1).build();
  EXPECT_EQ(g.order(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(GraphTest, TriangleBasics) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.order(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(GraphTest, NeighborsAreSorted) {
  const Graph g = make_graph(5, {{3, 1}, {3, 4}, {3, 0}, {3, 2}});
  const auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(GraphTest, DuplicateEdgesCollapse) {
  const Graph g = make_graph(2, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphTest, SelfLoopRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.edge(1, 1), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeEndpointRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.edge(0, 2), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeNeighborQueryRejected) {
  const Graph g = make_graph(2, {{0, 1}});
  EXPECT_THROW(g.neighbors(2), std::invalid_argument);
}

TEST(GraphTest, EdgesListIsCanonical) {
  const Graph g = make_graph(4, {{2, 1}, {3, 0}, {0, 1}});
  const auto e = g.edges();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0], std::make_pair(NodeId{0}, NodeId{1}));
  EXPECT_EQ(e[1], std::make_pair(NodeId{0}, NodeId{3}));
  EXPECT_EQ(e[2], std::make_pair(NodeId{1}, NodeId{2}));
}

TEST(GraphTest, BuilderEdgesSpanOverload) {
  const std::vector<std::pair<NodeId, NodeId>> list{{0, 1}, {1, 2}};
  GraphBuilder b(3);
  b.edges(list);
  EXPECT_EQ(b.build().edge_count(), 2u);
}

TEST(GraphFactoryTest, Path) {
  const Graph g = make_path(4);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphFactoryTest, Cycle) {
  const Graph g = make_cycle(5);
  EXPECT_EQ(g.edge_count(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(GraphFactoryTest, Complete) {
  const Graph g = make_complete(5);
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(GraphFactoryTest, Star) {
  const Graph g = make_star(6);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.degree(5), 1u);
}

TEST(GraphFactoryTest, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.order(), 12u);
  // 3*(4-1) horizontal + 4*(3-1) vertical = 9 + 8.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (1,1)
}

}  // namespace
}  // namespace manet::graph
