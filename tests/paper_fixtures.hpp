// Shared fixtures encoding the paper's worked examples.
//
// Figure 3 network, 0-indexed (our node k = paper node k+1):
//   heads: 0,1,2,3 (paper 1,2,3,4); members 4,5,6 -> cluster 0,
//   7 -> cluster 1, 8,9 -> cluster 2.
// The paper walks this network through CH_HOP1/CH_HOP2, the 2.5-hop
// coverage sets, the GATEWAY selections, both cluster graphs (Figure 4)
// and the SI/SD broadcast from source 1 (our 0) — all of which the core
// tests assert verbatim.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::testing {

/// Readable tag for sweep parameters — shown by gtest instead of a raw
/// byte dump when a parameterized expectation fails.
inline std::string param_tag(std::size_t nodes, double degree,
                             std::uint64_t seed,
                             const char* variant = nullptr) {
  std::ostringstream os;
  os << "n=" << nodes << " d=" << degree << " seed=" << seed;
  if (variant != nullptr) os << " [" << variant << "]";
  return os.str();
}

/// The 10-node network of the paper's Figure 3.
inline graph::Graph paper_figure3_network() {
  return graph::make_graph(10, {
      {0, 4}, {0, 5}, {0, 6},          // head 0 with members 4,5,6
      {1, 5}, {1, 7},                  // head 1: borders 5, member 7
      {2, 6}, {2, 7}, {2, 8}, {2, 9},  // head 2: borders 6,7; members 8,9
      {3, 8}, {3, 9},                  // head 3: borders 8,9
      {4, 8},                          // the 5-9 link of the paper
  });
}

/// The 3-node triangle of Figure 5 (redundancy discussion).
inline graph::Graph paper_figure5_triangle() {
  return graph::make_graph(3, {{0, 1}, {0, 2}, {1, 2}});
}

}  // namespace manet::testing
