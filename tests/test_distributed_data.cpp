// Message-level SD-CDS broadcast: the fully distributed counterpart of
// core::dynamic_broadcast, running over the round simulator after the
// construction phase quiesces.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/dynamic_broadcast.hpp"
#include "geom/unit_disk.hpp"
#include "net/protocol.hpp"
#include "paper_fixtures.hpp"

namespace manet::net {
namespace {

using core::CoverageMode;

TEST(DistributedDataTest, PaperIllustrationSevenForwardNodes) {
  // The §3 walk-through holds end-to-end through the message simulator:
  // source head 1 (ours 0), forward nodes {1,2,3,4,6,7,9} (ours
  // {0,1,2,3,5,6,8}).
  const auto g = testing::paper_figure3_network();
  const auto r =
      run_distributed_broadcast(g, CoverageMode::kTwoPointFiveHop, 0);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.forward_nodes, (NodeSet{0, 1, 2, 3, 5, 6, 8}));
  EXPECT_EQ(r.data_messages, 7u);
}

TEST(DistributedDataTest, MemberSourceHandsOff) {
  const auto g = testing::paper_figure3_network();
  const auto r =
      run_distributed_broadcast(g, CoverageMode::kTwoPointFiveHop, 9);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(contains_sorted(r.forward_nodes, 9));
}

TEST(DistributedDataTest, SingletonNetwork) {
  const auto g = graph::GraphBuilder(1).build();
  const auto r = run_distributed_broadcast(g, CoverageMode::kThreeHop, 0);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.forward_nodes, (NodeSet{0}));
}

TEST(DistributedDataTest, DataMessagesEqualForwardTransmissions) {
  const auto g = testing::paper_figure3_network();
  const auto r =
      run_distributed_broadcast(g, CoverageMode::kThreeHop, 2);
  EXPECT_TRUE(r.delivered_all);
  // Every forward node transmits at least once; a relay named by two
  // origins may transmit twice, so the count is bounded both ways.
  EXPECT_GE(r.data_messages, r.forward_nodes.size());
  EXPECT_LE(r.data_messages, 2 * r.forward_nodes.size());
}

struct DistDataParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;
  CoverageMode mode;

  friend std::ostream& operator<<(std::ostream& os, const DistDataParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed,
                                    core::to_string(p.mode));
  }
};

class DistributedDataSweep
    : public ::testing::TestWithParam<DistDataParam> {};

TEST_P(DistributedDataSweep, DeliversAndTracksCentralizedEngine) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto bb = core::build_dynamic_backbone(net->graph, mode);
  Rng pick(seed ^ 0xd474);
  for (int i = 0; i < 3; ++i) {
    const auto s = static_cast<NodeId>(pick.index(net->graph.order()));
    const auto distributed = run_distributed_broadcast(net->graph, mode, s);
    ASSERT_TRUE(distributed.delivered_all) << "source " << s;
    const auto centralized = core::dynamic_broadcast(net->graph, bb, s);
    // Round-synchronous and FIFO deliveries may tie-break differently,
    // so forward sets can differ by a node or two; the sizes must stay
    // close and every head forwards in both.
    const auto a = static_cast<double>(distributed.forward_nodes.size());
    const auto b = static_cast<double>(centralized.forward_count());
    EXPECT_LE(std::fabs(a - b), 0.25 * b + 2.0) << "source " << s;
    for (NodeId h : bb.clustering.heads)
      EXPECT_TRUE(contains_sorted(distributed.forward_nodes, h))
          << "head " << h;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, DistributedDataSweep,
    ::testing::Values(
        DistDataParam{20, 6, 121, CoverageMode::kTwoPointFiveHop},
        DistDataParam{20, 6, 121, CoverageMode::kThreeHop},
        DistDataParam{40, 6, 122, CoverageMode::kTwoPointFiveHop},
        DistDataParam{60, 18, 123, CoverageMode::kThreeHop},
        DistDataParam{80, 6, 124, CoverageMode::kTwoPointFiveHop},
        DistDataParam{100, 18, 125, CoverageMode::kTwoPointFiveHop},
        DistDataParam{100, 6, 126, CoverageMode::kThreeHop}));

TEST(SimulatorInjectTest, InjectBeforeRunRejectsBadSource) {
  const auto g = graph::make_path(3);
  Simulator sim(g, [](NodeId v) {
    return std::make_unique<BackboneNode>(
        v, CoverageMode::kTwoPointFiveHop);
  });
  EXPECT_THROW(sim.inject(5, HelloMsg{}), std::invalid_argument);
}

TEST(SimulatorInjectTest, ResumeAfterQuiescence) {
  const auto g = graph::make_path(5);
  Simulator sim(g, [](NodeId v) {
    return std::make_unique<BackboneNode>(
        v, CoverageMode::kTwoPointFiveHop);
  });
  const auto construction_rounds = sim.run();
  EXPECT_GT(construction_rounds, 0u);
  // Quiescent: another run does nothing.
  EXPECT_EQ(sim.run(), 1u);  // one empty round detects quiescence
  auto& src = dynamic_cast<BackboneNode&>(sim.process(0));
  sim.inject(0, src.make_broadcast_packet());
  EXPECT_GT(sim.counts().data, 0u);
  sim.run();
  for (NodeId v = 0; v < 5; ++v)
    EXPECT_TRUE(dynamic_cast<const BackboneNode&>(sim.process(v))
                    .data_received())
        << "node " << v;
}

TEST(SimulatorInjectTest, ResetBroadcastStateAllowsReuse) {
  const auto g = testing::paper_figure3_network();
  Simulator sim(g, [](NodeId v) {
    return std::make_unique<BackboneNode>(
        v, CoverageMode::kTwoPointFiveHop);
  });
  sim.run();
  for (int round_trip = 0; round_trip < 3; ++round_trip) {
    auto& src = dynamic_cast<BackboneNode&>(sim.process(0));
    sim.inject(0, src.make_broadcast_packet());
    sim.run();
    for (NodeId v = 0; v < g.order(); ++v) {
      auto& node = dynamic_cast<BackboneNode&>(sim.process(v));
      EXPECT_TRUE(node.data_received());
      node.reset_broadcast_state();
      EXPECT_FALSE(node.data_received());
    }
  }
}

}  // namespace
}  // namespace manet::net
