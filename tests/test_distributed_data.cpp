// Message-level SD-CDS broadcast: the fully distributed counterpart of
// core::dynamic_broadcast, running over the round simulator after the
// construction phase quiesces.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/dynamic_broadcast.hpp"
#include "geom/unit_disk.hpp"
#include "net/protocol.hpp"
#include "paper_fixtures.hpp"

namespace manet::net {
namespace {

using core::CoverageMode;

TEST(DistributedDataTest, PaperIllustrationSevenForwardNodes) {
  // The §3 walk-through holds end-to-end through the message simulator:
  // source head 1 (ours 0), forward nodes {1,2,3,4,6,7,9} (ours
  // {0,1,2,3,5,6,8}).
  const auto g = testing::paper_figure3_network();
  const auto r =
      run_distributed_broadcast(g, CoverageMode::kTwoPointFiveHop, 0);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.forward_nodes, (NodeSet{0, 1, 2, 3, 5, 6, 8}));
  EXPECT_EQ(r.data_messages, 7u);
}

TEST(DistributedDataTest, MemberSourceHandsOff) {
  const auto g = testing::paper_figure3_network();
  const auto r =
      run_distributed_broadcast(g, CoverageMode::kTwoPointFiveHop, 9);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_TRUE(contains_sorted(r.forward_nodes, 9));
}

TEST(DistributedDataTest, SingletonNetwork) {
  const auto g = graph::GraphBuilder(1).build();
  const auto r = run_distributed_broadcast(g, CoverageMode::kThreeHop, 0);
  EXPECT_TRUE(r.delivered_all);
  EXPECT_EQ(r.forward_nodes, (NodeSet{0}));
}

TEST(DistributedDataTest, DataMessagesEqualForwardTransmissions) {
  const auto g = testing::paper_figure3_network();
  const auto r =
      run_distributed_broadcast(g, CoverageMode::kThreeHop, 2);
  EXPECT_TRUE(r.delivered_all);
  // Every forward node transmits at least once; a relay named by two
  // origins may transmit twice, so the count is bounded both ways.
  EXPECT_GE(r.data_messages, r.forward_nodes.size());
  EXPECT_LE(r.data_messages, 2 * r.forward_nodes.size());
}

struct DistDataParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;
  CoverageMode mode;

  friend std::ostream& operator<<(std::ostream& os, const DistDataParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed,
                                    core::to_string(p.mode));
  }
};

class DistributedDataSweep
    : public ::testing::TestWithParam<DistDataParam> {};

TEST_P(DistributedDataSweep, DeliversAndTracksCentralizedEngine) {
  const auto [n, d, seed, mode] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto bb = core::build_dynamic_backbone(net->graph, mode);
  Rng pick(seed ^ 0xd474);
  for (int i = 0; i < 3; ++i) {
    const auto s = static_cast<NodeId>(pick.index(net->graph.order()));
    const auto distributed = run_distributed_broadcast(net->graph, mode, s);
    ASSERT_TRUE(distributed.delivered_all) << "source " << s;
    const auto centralized = core::dynamic_broadcast(net->graph, bb, s);
    // Round-synchronous and FIFO deliveries may tie-break differently,
    // so forward sets can differ by a node or two; the sizes must stay
    // close and every head forwards in both.
    const auto a = static_cast<double>(distributed.forward_nodes.size());
    const auto b = static_cast<double>(centralized.forward_count());
    EXPECT_LE(std::fabs(a - b), 0.25 * b + 2.0) << "source " << s;
    for (NodeId h : bb.clustering.heads)
      EXPECT_TRUE(contains_sorted(distributed.forward_nodes, h))
          << "head " << h;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, DistributedDataSweep,
    ::testing::Values(
        DistDataParam{20, 6, 121, CoverageMode::kTwoPointFiveHop},
        DistDataParam{20, 6, 121, CoverageMode::kThreeHop},
        DistDataParam{40, 6, 122, CoverageMode::kTwoPointFiveHop},
        DistDataParam{60, 18, 123, CoverageMode::kThreeHop},
        DistDataParam{80, 6, 124, CoverageMode::kTwoPointFiveHop},
        DistDataParam{100, 18, 125, CoverageMode::kTwoPointFiveHop},
        DistDataParam{100, 6, 126, CoverageMode::kThreeHop}));

TEST(SimulatorInjectTest, InjectBeforeRunRejectsBadSource) {
  const auto g = graph::make_path(3);
  Simulator sim(g, [](NodeId v) {
    return std::make_unique<BackboneNode>(
        v, CoverageMode::kTwoPointFiveHop);
  });
  EXPECT_THROW(sim.inject(5, HelloMsg{}), std::invalid_argument);
}

TEST(SimulatorInjectTest, ResumeAfterQuiescence) {
  const auto g = graph::make_path(5);
  Simulator sim(g, [](NodeId v) {
    return std::make_unique<BackboneNode>(
        v, CoverageMode::kTwoPointFiveHop);
  });
  const auto construction_rounds = sim.run();
  EXPECT_GT(construction_rounds, 0u);
  // Quiescent: another run does nothing.
  EXPECT_EQ(sim.run(), 1u);  // one empty round detects quiescence
  auto& src = dynamic_cast<BackboneNode&>(sim.process(0));
  sim.inject(0, src.make_broadcast_packet());
  EXPECT_GT(sim.counts().data, 0u);
  sim.run();
  for (NodeId v = 0; v < 5; ++v)
    EXPECT_TRUE(dynamic_cast<const BackboneNode&>(sim.process(v))
                    .data_received())
        << "node " << v;
}

TEST(SimulatorInjectTest, ResetBroadcastStateAllowsReuse) {
  const auto g = testing::paper_figure3_network();
  Simulator sim(g, [](NodeId v) {
    return std::make_unique<BackboneNode>(
        v, CoverageMode::kTwoPointFiveHop);
  });
  sim.run();
  for (int round_trip = 0; round_trip < 3; ++round_trip) {
    auto& src = dynamic_cast<BackboneNode&>(sim.process(0));
    sim.inject(0, src.make_broadcast_packet());
    sim.run();
    for (NodeId v = 0; v < g.order(); ++v) {
      auto& node = dynamic_cast<BackboneNode&>(sim.process(v));
      EXPECT_TRUE(node.data_received());
      node.reset_broadcast_state();
      EXPECT_FALSE(node.data_received());
    }
  }
}

// One constructed backbone must serve any number of broadcasts: inject
// a second and third packet from *different* sources, resetting the
// per-broadcast state in between, and require full delivery each time.
TEST(SimulatorInjectTest, SecondAndThirdSourcesDeliverAfterReset) {
  const auto g = testing::paper_figure3_network();
  Simulator sim(g, [](NodeId v) {
    return std::make_unique<BackboneNode>(
        v, CoverageMode::kTwoPointFiveHop);
  });
  sim.run();

  std::size_t data_so_far = 0;
  const auto broadcast_from = [&](NodeId source) {
    auto& src = dynamic_cast<BackboneNode&>(sim.process(source));
    sim.inject(source, src.make_broadcast_packet());
    sim.run();
    const std::size_t sent = sim.counts().data - data_so_far;
    data_so_far = sim.counts().data;
    for (NodeId v = 0; v < g.order(); ++v) {
      auto& node = dynamic_cast<BackboneNode&>(sim.process(v));
      EXPECT_TRUE(node.data_received())
          << "node " << v << ", source " << source;
      node.reset_broadcast_state();
      EXPECT_FALSE(node.data_received());
      EXPECT_FALSE(node.data_forwarded());
    }
    return sent;
  };

  for (const NodeId source : {NodeId{4}, NodeId{7}, NodeId{9}}) {
    const std::size_t sent = broadcast_from(source);
    EXPECT_GE(sent, 1u) << "source " << source;
    EXPECT_LE(sent, 2 * g.order()) << "source " << source;
  }
}

// Alternating clusterhead and member sources over one backbone: the
// head path (selection piggyback) and the member path (bare handoff to
// the head) must both reconverge to full delivery after resets.
TEST(SimulatorInjectTest, MixedHeadAndMemberSourcesReuseBackbone) {
  const auto g = testing::paper_figure3_network();
  Simulator sim(g, [](NodeId v) {
    return std::make_unique<BackboneNode>(v, CoverageMode::kThreeHop);
  });
  sim.run();

  NodeId head_source = kInvalidNode;
  NodeId member_source = kInvalidNode;
  for (NodeId v = 0; v < g.order(); ++v) {
    const auto& node = dynamic_cast<const BackboneNode&>(sim.process(v));
    if (node.is_head() && head_source == kInvalidNode) head_source = v;
    if (!node.is_head()) member_source = v;
  }
  ASSERT_NE(head_source, kInvalidNode);
  ASSERT_NE(member_source, kInvalidNode);

  for (const NodeId source :
       {member_source, head_source, member_source, head_source}) {
    auto& src = dynamic_cast<BackboneNode&>(sim.process(source));
    sim.inject(source, src.make_broadcast_packet());
    sim.run();
    for (NodeId v = 0; v < g.order(); ++v) {
      auto& node = dynamic_cast<BackboneNode&>(sim.process(v));
      EXPECT_TRUE(node.data_received())
          << "node " << v << ", source " << source;
      node.reset_broadcast_state();
    }
  }
}

}  // namespace
}  // namespace manet::net
