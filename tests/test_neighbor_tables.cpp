// Unit tests for CH_HOP1/CH_HOP2 tables, asserted verbatim against the
// paper's Figure 3 walkthrough.
#include "core/neighbor_tables.hpp"

#include <gtest/gtest.h>

#include "cluster/lowest_id.hpp"
#include "paper_fixtures.hpp"

namespace manet::core {
namespace {

using Entries = std::vector<Hop2Entry>;

class Figure3Tables : public ::testing::Test {
 protected:
  graph::Graph g_ = testing::paper_figure3_network();
  cluster::Clustering c_ = cluster::lowest_id_clustering(g_);
  NeighborTables t25_ =
      build_neighbor_tables(g_, c_, CoverageMode::kTwoPointFiveHop);
  NeighborTables t3_ = build_neighbor_tables(g_, c_, CoverageMode::kThreeHop);
};

TEST_F(Figure3Tables, ChHop1MatchesPaperMessages) {
  // Paper: CH_HOP1(5)={1*}, CH_HOP1(6)={1*,2}, CH_HOP1(7)={1*,3},
  //        CH_HOP1(8)={2*,3}, CH_HOP1(9)={3*,4}, CH_HOP1(10)={3*,4}.
  EXPECT_EQ(t25_.ch_hop1[4], (NodeSet{0}));
  EXPECT_EQ(t25_.ch_hop1[5], (NodeSet{0, 1}));
  EXPECT_EQ(t25_.ch_hop1[6], (NodeSet{0, 2}));
  EXPECT_EQ(t25_.ch_hop1[7], (NodeSet{1, 2}));
  EXPECT_EQ(t25_.ch_hop1[8], (NodeSet{2, 3}));
  EXPECT_EQ(t25_.ch_hop1[9], (NodeSet{2, 3}));
}

TEST_F(Figure3Tables, HeadsSendNoChHop1) {
  for (NodeId h : c_.heads) EXPECT_TRUE(t25_.ch_hop1[h].empty());
}

TEST_F(Figure3Tables, ChHop1IsModeIndependent) {
  for (NodeId v = 0; v < g_.order(); ++v)
    EXPECT_EQ(t25_.ch_hop1[v], t3_.ch_hop1[v]);
}

TEST_F(Figure3Tables, ChHop2MatchesPaperMessages) {
  // Paper: CH_HOP2(9) = {1[5]} and CH_HOP2(5) = {3[9]}; all others empty.
  EXPECT_EQ(t25_.ch_hop2[8], (Entries{{0, 4}}));
  EXPECT_EQ(t25_.ch_hop2[4], (Entries{{2, 8}}));
  for (NodeId v : {5u, 6u, 7u, 9u}) {
    EXPECT_TRUE(t25_.ch_hop2[v].empty()) << "node " << v;
  }
}

TEST_F(Figure3Tables, TwoPointFiveModeOnlyReportsOwnHead) {
  // Paper's note on node 5: head 4 (ours 3) is NOT added to node 5's
  // (ours 4) 2-hop set even though 9 (ours 8) is adjacent to it — only
  // the clusterhead *of* the reporting neighbor counts.
  for (const auto& e : t25_.ch_hop2[4]) EXPECT_NE(e.head, 3u);
}

TEST_F(Figure3Tables, ThreeHopModeReportsAllHeardHeads) {
  // In 3-hop mode node 4 (paper 5) also records head 3 (paper 4) from
  // CH_HOP1(9)={3,4}.
  EXPECT_EQ(t3_.ch_hop2[4], (Entries{{2, 8}, {3, 8}}));
}

TEST_F(Figure3Tables, EntriesExcludeOwnNeighbors) {
  // "If the clusterhead of u is a neighbor of v, v ignores the message."
  for (NodeId v = 0; v < g_.order(); ++v)
    for (const auto& e : t3_.ch_hop2[v])
      EXPECT_FALSE(g_.has_edge(v, e.head))
          << "node " << v << " recorded adjacent head " << e.head;
}

TEST_F(Figure3Tables, ViasAreNonHeadNeighbors) {
  for (NodeId v = 0; v < g_.order(); ++v) {
    for (const auto& e : t25_.ch_hop2[v]) {
      EXPECT_TRUE(g_.has_edge(v, e.via));
      EXPECT_FALSE(c_.is_head(e.via));
      EXPECT_TRUE(g_.has_edge(e.via, e.head));
    }
  }
}

TEST_F(Figure3Tables, Hop2HeadsDedupes) {
  EXPECT_EQ(t3_.hop2_heads(4), (NodeSet{2, 3}));
  EXPECT_EQ(t3_.hop2_heads(5), (NodeSet{}));
}

TEST(NeighborTablesTest, ModeToString) {
  EXPECT_STREQ(to_string(CoverageMode::kTwoPointFiveHop), "2.5-hop");
  EXPECT_STREQ(to_string(CoverageMode::kThreeHop), "3-hop");
}

TEST(NeighborTablesTest, MismatchedClusteringRejected) {
  const auto g = graph::make_path(4);
  auto c = cluster::lowest_id_clustering(graph::make_path(3));
  EXPECT_THROW(build_neighbor_tables(g, c, CoverageMode::kThreeHop),
               std::invalid_argument);
}

}  // namespace
}  // namespace manet::core
