// Tests for the first-copy latency metric across all broadcast engines.
#include <gtest/gtest.h>

#include "broadcast/dominant_pruning.hpp"
#include "broadcast/flooding.hpp"
#include "broadcast/mpr.hpp"
#include "broadcast/si_cds.hpp"
#include "common/rng.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "paper_fixtures.hpp"

namespace manet::broadcast {
namespace {

std::uint32_t eccentricity(const graph::Graph& g, NodeId v) {
  std::uint32_t worst = 0;
  for (std::uint32_t d : graph::bfs_distances(g, v))
    if (d != graph::kUnreachable) worst = std::max(worst, d);
  return worst;
}

TEST(LatencyTest, FloodMatchesBfsEccentricity) {
  const auto g = testing::paper_figure3_network();
  for (NodeId s = 0; s < g.order(); ++s) {
    const auto stats = flood(g, s);
    EXPECT_EQ(stats.latency_hops(), eccentricity(g, s)) << "source " << s;
    // First-copy hops are exactly the BFS distances under flooding.
    const auto dist = graph::bfs_distances(g, s);
    for (NodeId v = 0; v < g.order(); ++v)
      EXPECT_EQ(stats.first_copy_hops[v], dist[v]) << "node " << v;
  }
}

TEST(LatencyTest, PathLatencyIsLength) {
  const auto g = graph::make_path(9);
  EXPECT_EQ(flood(g, 0).latency_hops(), 8u);
  EXPECT_EQ(flood(g, 4).latency_hops(), 4u);
}

TEST(LatencyTest, EmptyStatsReportZero) {
  BroadcastStats empty;
  EXPECT_EQ(empty.latency_hops(), 0u);
}

TEST(LatencyTest, UnreachedNodesExcluded) {
  const auto g = graph::make_graph(4, {{0, 1}, {2, 3}});
  const auto stats = flood(g, 0);
  EXPECT_EQ(stats.latency_hops(), 1u);
  EXPECT_EQ(stats.first_copy_hops[2], kUnreachableHops);
}

TEST(LatencyTest, BackbonesAddBoundedDetour) {
  Rng rng(33);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 60;
  cfg.range = geom::range_for_average_degree(10.0, 60, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto c = cluster::lowest_id_clustering(net->graph);
  const auto st = core::build_static_backbone(
      net->graph, c, core::CoverageMode::kTwoPointFiveHop);
  const auto bb = core::build_dynamic_backbone(
      net->graph, c, core::CoverageMode::kTwoPointFiveHop);
  for (NodeId s = 0; s < net->graph.order(); s += 7) {
    const auto lower = eccentricity(net->graph, s);
    const auto si = si_cds_broadcast(net->graph, st.cds, s).latency_hops();
    const auto sd = core::dynamic_broadcast(net->graph, bb, s).latency_hops();
    const auto mp = mpr_broadcast(net->graph, s).latency_hops();
    const auto dp = dominant_pruning_broadcast(net->graph, s,
                                               PruningRule::kDominant)
                        .latency_hops();
    EXPECT_GE(si, lower);
    EXPECT_GE(sd, lower);
    EXPECT_GE(mp, lower);
    EXPECT_GE(dp, lower);
    // Detours stay bounded (a small constant factor on these densities).
    EXPECT_LE(si, 3 * lower + 3);
    EXPECT_LE(sd, 3 * lower + 3);
  }
}

TEST(LatencyTest, DynamicEngineTracksHops) {
  const auto g = testing::paper_figure3_network();
  const auto bb =
      core::build_dynamic_backbone(g, core::CoverageMode::kTwoPointFiveHop);
  const auto r = core::dynamic_broadcast(g, bb, 0);
  EXPECT_EQ(r.first_copy_hops[0], 0u);
  // Every reached node is within graph distance + detour of the source.
  const auto dist = graph::bfs_distances(g, 0);
  for (NodeId v = 0; v < g.order(); ++v)
    EXPECT_GE(r.first_copy_hops[v], dist[v]) << "node " << v;
  EXPECT_GT(r.latency_hops(), 0u);
}

}  // namespace
}  // namespace manet::broadcast
