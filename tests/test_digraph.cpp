// Unit tests for the directed cluster-graph support (Digraph + SCC).
#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace manet::graph {
namespace {

TEST(DigraphTest, AddAndQueryArcs) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(0, 1);  // idempotent
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_EQ(g.arc_count(), 2u);
  const auto s = g.successors(0);
  EXPECT_EQ(NodeSet(s.begin(), s.end()), (NodeSet{1, 2}));
}

TEST(DigraphTest, RejectsSelfLoopAndOutOfRange) {
  Digraph g(2);
  EXPECT_THROW(g.add_arc(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_arc(0, 2), std::invalid_argument);
  EXPECT_THROW(g.has_arc(2, 0), std::invalid_argument);
}

TEST(DigraphTest, ArcsListSorted) {
  Digraph g(3);
  g.add_arc(2, 0);
  g.add_arc(0, 2);
  g.add_arc(0, 1);
  const auto a = g.arcs();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], std::make_pair(NodeId{0}, NodeId{1}));
  EXPECT_EQ(a[1], std::make_pair(NodeId{0}, NodeId{2}));
  EXPECT_EQ(a[2], std::make_pair(NodeId{2}, NodeId{0}));
}

TEST(SccTest, DirectedCycleIsOneComponent) {
  Digraph g(4);
  for (NodeId v = 0; v < 4; ++v) g.add_arc(v, (v + 1) % 4);
  const auto [label, count] = strongly_connected_components(g);
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(is_strongly_connected(g));
  (void)label;
}

TEST(SccTest, DagHasSingletonComponents) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  const auto [label, count] = strongly_connected_components(g);
  EXPECT_EQ(count, 3u);
  EXPECT_FALSE(is_strongly_connected(g));
  // Tarjan labels come out in reverse topological order: sinks first.
  EXPECT_LT(label[2], label[1]);
  EXPECT_LT(label[1], label[0]);
}

TEST(SccTest, TwoCyclesJoinedByOneArc) {
  Digraph g(6);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);
  g.add_arc(3, 4);
  g.add_arc(4, 5);
  g.add_arc(5, 3);
  g.add_arc(2, 3);  // one-way bridge
  const auto [label, count] = strongly_connected_components(g);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[0], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
}

TEST(SccTest, EmptyAndSingletonAreStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(Digraph{}));
  EXPECT_TRUE(is_strongly_connected(Digraph(1)));
}

TEST(SccTest, TwoIsolatedVerticesAreNot) {
  EXPECT_FALSE(is_strongly_connected(Digraph(2)));
}

TEST(SccTest, DeepChainDoesNotOverflowStack) {
  // 200k-vertex cycle: recursion-based Tarjan would blow the stack.
  const std::size_t n = 200000;
  Digraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_arc(v, v + 1);
  g.add_arc(static_cast<NodeId>(n - 1), 0);
  EXPECT_TRUE(is_strongly_connected(g));
}

}  // namespace
}  // namespace manet::graph
