// Unit tests for the replicate-until-CI-converges controller (the paper's
// "repeat until the 99% CI is within +-5%" stopping rule).
#include "stats/replicator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace manet::stats {
namespace {

TEST(ReplicatorTest, ConstantMetricConvergesAtMinimum) {
  ReplicationPolicy policy;
  policy.min_replications = 10;
  const auto r = replicate(policy, 1, [](std::size_t, std::vector<double>& out) {
    out.push_back(42.0);
  });
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.replications, 10u);
  EXPECT_DOUBLE_EQ(r.metrics[0].mean(), 42.0);
}

TEST(ReplicatorTest, NoisyMetricRunsLonger) {
  ReplicationPolicy policy;
  policy.min_replications = 5;
  policy.max_replications = 4000;
  Rng rng(1);
  const auto r =
      replicate(policy, 1, [&](std::size_t, std::vector<double>& out) {
        out.push_back(10.0 + rng.uniform(-5.0, 5.0));
      });
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.replications, 5u);
  EXPECT_NEAR(r.metrics[0].mean(), 10.0, 1.0);
  // Converged means the achieved CI meets the paper's rule.
  EXPECT_LE(r.metrics[0].relative_halfwidth(policy.confidence),
            policy.relative_halfwidth);
}

TEST(ReplicatorTest, CapStopsDivergentStream) {
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 50;
  // Alternating huge values never tighten to +-5%.
  const auto r =
      replicate(policy, 1, [](std::size_t rep, std::vector<double>& out) {
        out.push_back(rep % 2 ? 1.0 : 1000.0);
      });
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.replications, 50u);
}

TEST(ReplicatorTest, AllMetricsMustConverge) {
  ReplicationPolicy policy;
  policy.min_replications = 5;
  policy.max_replications = 40;
  const auto r =
      replicate(policy, 2, [](std::size_t rep, std::vector<double>& out) {
        out.push_back(7.0);                       // converges instantly
        out.push_back(rep % 2 ? 1.0 : 1000.0);    // never converges
      });
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.replications, 40u);
  EXPECT_DOUBLE_EQ(r.metrics[0].mean(), 7.0);
}

TEST(ReplicatorTest, ReplicationIndexIsSequential) {
  ReplicationPolicy policy;
  policy.min_replications = 4;
  std::vector<std::size_t> seen;
  replicate(policy, 1, [&](std::size_t rep, std::vector<double>& out) {
    seen.push_back(rep);
    out.push_back(1.0);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

// Pure function of the replication index (thread-safe by construction):
// two noisy metrics with different convergence speeds.
void noisy_sample(std::size_t rep, std::vector<double>& out) {
  Rng rng(derive_seed(77, rep, 1));
  out.push_back(10.0 + rng.uniform(-4.0, 4.0));
  out.push_back(100.0 + rng.uniform(-1.0, 1.0));
}

TEST(ReplicatorTest, ParallelMatchesSequentialBitwise) {
  ReplicationPolicy sequential;
  sequential.min_replications = 5;
  sequential.max_replications = 500;
  const auto base = replicate(sequential, 2, noisy_sample);
  ASSERT_TRUE(base.converged);

  for (std::size_t threads : {2u, 4u, 7u}) {
    ReplicationPolicy parallel = sequential;
    parallel.threads = threads;
    const auto r = replicate(parallel, 2, noisy_sample);
    EXPECT_EQ(r.replications, base.replications) << threads << " threads";
    EXPECT_EQ(r.converged, base.converged);
    ASSERT_EQ(r.metrics.size(), base.metrics.size());
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      // Exact == on every statistic: the parallel reduction must follow
      // the sequential accumulation order bit for bit.
      EXPECT_EQ(r.metrics[m].count(), base.metrics[m].count());
      EXPECT_EQ(r.metrics[m].mean(), base.metrics[m].mean());
      EXPECT_EQ(r.metrics[m].variance(), base.metrics[m].variance());
      EXPECT_EQ(r.metrics[m].min(), base.metrics[m].min());
      EXPECT_EQ(r.metrics[m].max(), base.metrics[m].max());
    }
  }
}

TEST(ReplicatorTest, ParallelCapMatchesSequential) {
  // A stream that never converges must stop at the cap with identical
  // statistics regardless of thread count (the cap is not a multiple of
  // the thread count, so the last batch is a partial one).
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 53;
  const auto base = replicate(policy, 2, noisy_sample);

  ReplicationPolicy parallel = policy;
  parallel.threads = 4;
  const auto r = replicate(parallel, 2, noisy_sample);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.replications, 53u);
  EXPECT_EQ(r.metrics[0].mean(), base.metrics[0].mean());
  EXPECT_EQ(r.metrics[0].variance(), base.metrics[0].variance());
}

TEST(ReplicatorTest, ParallelPropagatesCallbackExceptions) {
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 40;
  policy.threads = 4;
  EXPECT_THROW(
      replicate(policy, 1,
                [](std::size_t rep, std::vector<double>& out) {
                  if (rep == 9) throw std::runtime_error("boom");
                  // Never converges, so the run must reach replication 9.
                  out.push_back(rep % 2 ? 1.0 : 1000.0);
                }),
      std::runtime_error);
}

TEST(ReplicatorTest, RejectsBadPolicyAndArity) {
  ReplicationPolicy bad;
  bad.min_replications = 1;
  EXPECT_THROW(
      replicate(bad, 1, [](std::size_t, std::vector<double>& out) {
        out.push_back(0.0);
      }),
      std::invalid_argument);

  ReplicationPolicy policy;
  EXPECT_THROW(
      replicate(policy, 2, [](std::size_t, std::vector<double>& out) {
        out.push_back(0.0);  // wrong arity: 1 of 2
      }),
      std::invalid_argument);
  EXPECT_THROW(replicate(policy, 0,
                         [](std::size_t, std::vector<double>&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace manet::stats
