// Unit tests for the replicate-until-CI-converges controller (the paper's
// "repeat until the 99% CI is within +-5%" stopping rule).
#include "stats/replicator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace manet::stats {
namespace {

TEST(ReplicatorTest, ConstantMetricConvergesAtMinimum) {
  ReplicationPolicy policy;
  policy.min_replications = 10;
  const auto r = replicate(policy, 1, [](std::size_t, std::vector<double>& out) {
    out.push_back(42.0);
  });
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.replications, 10u);
  EXPECT_DOUBLE_EQ(r.metrics[0].mean(), 42.0);
}

TEST(ReplicatorTest, NoisyMetricRunsLonger) {
  ReplicationPolicy policy;
  policy.min_replications = 5;
  policy.max_replications = 4000;
  Rng rng(1);
  const auto r =
      replicate(policy, 1, [&](std::size_t, std::vector<double>& out) {
        out.push_back(10.0 + rng.uniform(-5.0, 5.0));
      });
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.replications, 5u);
  EXPECT_NEAR(r.metrics[0].mean(), 10.0, 1.0);
  // Converged means the achieved CI meets the paper's rule.
  EXPECT_LE(r.metrics[0].relative_halfwidth(policy.confidence),
            policy.relative_halfwidth);
}

TEST(ReplicatorTest, CapStopsDivergentStream) {
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 50;
  // Alternating huge values never tighten to +-5%.
  const auto r =
      replicate(policy, 1, [](std::size_t rep, std::vector<double>& out) {
        out.push_back(rep % 2 ? 1.0 : 1000.0);
      });
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.replications, 50u);
}

TEST(ReplicatorTest, AllMetricsMustConverge) {
  ReplicationPolicy policy;
  policy.min_replications = 5;
  policy.max_replications = 40;
  const auto r =
      replicate(policy, 2, [](std::size_t rep, std::vector<double>& out) {
        out.push_back(7.0);                       // converges instantly
        out.push_back(rep % 2 ? 1.0 : 1000.0);    // never converges
      });
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.replications, 40u);
  EXPECT_DOUBLE_EQ(r.metrics[0].mean(), 7.0);
}

TEST(ReplicatorTest, ReplicationIndexIsSequential) {
  ReplicationPolicy policy;
  policy.min_replications = 4;
  std::vector<std::size_t> seen;
  replicate(policy, 1, [&](std::size_t rep, std::vector<double>& out) {
    seen.push_back(rep);
    out.push_back(1.0);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ReplicatorTest, RejectsBadPolicyAndArity) {
  ReplicationPolicy bad;
  bad.min_replications = 1;
  EXPECT_THROW(
      replicate(bad, 1, [](std::size_t, std::vector<double>& out) {
        out.push_back(0.0);
      }),
      std::invalid_argument);

  ReplicationPolicy policy;
  EXPECT_THROW(
      replicate(policy, 2, [](std::size_t, std::vector<double>& out) {
        out.push_back(0.0);  // wrong arity: 1 of 2
      }),
      std::invalid_argument);
  EXPECT_THROW(replicate(policy, 0,
                         [](std::size_t, std::vector<double>&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace manet::stats
