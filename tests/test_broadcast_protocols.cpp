// Unit + property tests for the broadcast protocol zoo (flooding, SI-CDS,
// DP, PDP, MPR) — the related-work baselines of the paper's §2.
#include <gtest/gtest.h>

#include "broadcast/dominant_pruning.hpp"
#include "broadcast/flooding.hpp"
#include "broadcast/mpr.hpp"
#include "broadcast/si_cds.hpp"
#include "common/rng.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "paper_fixtures.hpp"

namespace manet::broadcast {
namespace {

TEST(FloodingTest, EveryNodeForwardsOnConnectedGraph) {
  const auto g = graph::make_cycle(8);
  const auto s = flood(g, 3);
  EXPECT_TRUE(s.delivered_all);
  EXPECT_EQ(s.forward_count(), 8u);
  EXPECT_EQ(s.transmissions, 8u);
  EXPECT_DOUBLE_EQ(s.delivery_ratio(), 1.0);
}

TEST(FloodingTest, DisconnectedComponentUnreached) {
  const auto g = graph::make_graph(5, {{0, 1}, {2, 3}});
  const auto s = flood(g, 0);
  EXPECT_FALSE(s.delivered_all);
  EXPECT_EQ(s.forward_count(), 2u);
  EXPECT_DOUBLE_EQ(s.delivery_ratio(), 0.4);
}

TEST(FloodingTest, FigureFiveTriangleRedundancy) {
  // Figure 5: all three nodes transmit under blind flooding — the two
  // redundant transmissions motivate the pruning discussion.
  const auto s = flood(testing::paper_figure5_triangle(), 0);
  EXPECT_EQ(s.forward_count(), 3u);
}

TEST(SiCdsTest, OnlyBackboneForwards) {
  const auto g = testing::paper_figure3_network();
  const auto bb = core::build_static_backbone(
      g, core::CoverageMode::kTwoPointFiveHop);
  const auto s = si_cds_broadcast(g, bb.cds, 0);
  EXPECT_TRUE(s.delivered_all);
  // Paper: broadcasting over the static backbone uses all 9 CDS nodes.
  EXPECT_EQ(s.forward_nodes, bb.cds);
  EXPECT_EQ(s.forward_count(), 9u);
}

TEST(SiCdsTest, NonBackboneSourceAddsItself) {
  const auto g = testing::paper_figure3_network();
  const auto bb = core::build_static_backbone(
      g, core::CoverageMode::kTwoPointFiveHop);
  ASSERT_FALSE(bb.in_backbone(9));
  const auto s = si_cds_broadcast(g, bb.cds, 9);
  EXPECT_TRUE(s.delivered_all);
  EXPECT_TRUE(contains_sorted(s.forward_nodes, 9));
  EXPECT_EQ(s.forward_count(), bb.cds.size() + 1);
}

TEST(SiCdsTest, WorksWithAnyCds) {
  const auto g = graph::make_path(5);
  const auto s = si_cds_broadcast(g, {1, 2, 3}, 0);
  EXPECT_TRUE(s.delivered_all);
  EXPECT_EQ(s.forward_nodes, (NodeSet{0, 1, 2, 3}));
}

TEST(DominantPruningTest, PathDelivers) {
  const auto g = graph::make_path(7);
  for (const auto rule :
       {PruningRule::kDominant, PruningRule::kPartialDominant}) {
    const auto s = dominant_pruning_broadcast(g, 0, rule);
    EXPECT_TRUE(s.delivered_all);
    // On a path the forward set is the interior plus the source.
    EXPECT_EQ(s.forward_count(), 6u);
  }
}

TEST(DominantPruningTest, StarNeedsOnlyCenter) {
  const auto g = graph::make_star(9);
  const auto from_center =
      dominant_pruning_broadcast(g, 0, PruningRule::kDominant);
  EXPECT_TRUE(from_center.delivered_all);
  EXPECT_EQ(from_center.forward_count(), 1u);
  const auto from_leaf =
      dominant_pruning_broadcast(g, 3, PruningRule::kDominant);
  EXPECT_TRUE(from_leaf.delivered_all);
  EXPECT_EQ(from_leaf.forward_count(), 2u);  // leaf + center
}

TEST(DominantPruningTest, TriangleAvoidsRedundancy) {
  // Figure 5's scenario: with forward lists, the two downstream nodes
  // stay silent.
  const auto s = dominant_pruning_broadcast(testing::paper_figure5_triangle(),
                                            0, PruningRule::kDominant);
  EXPECT_TRUE(s.delivered_all);
  EXPECT_EQ(s.forward_count(), 1u);
}

TEST(MprTest, SetsCoverTwoHopNeighborhood) {
  const auto g = testing::paper_figure3_network();
  const auto mpr = compute_mpr_sets(g);
  EXPECT_EQ(validate_mpr_sets(g, mpr), "");
}

TEST(MprTest, PathSelectsInterior) {
  const auto g = graph::make_path(5);
  const auto mpr = compute_mpr_sets(g);
  EXPECT_EQ(mpr[0], (NodeSet{1}));
  EXPECT_EQ(mpr[2], (NodeSet{1, 3}));
  const auto s = mpr_broadcast(g, mpr, 0);
  EXPECT_TRUE(s.delivered_all);
}

TEST(MprTest, CompleteGraphNeedsNoRelays) {
  const auto g = graph::make_complete(6);
  const auto mpr = compute_mpr_sets(g);
  for (NodeId v = 0; v < 6; ++v) EXPECT_TRUE(mpr[v].empty());
  const auto s = mpr_broadcast(g, 1);
  EXPECT_TRUE(s.delivered_all);
  EXPECT_EQ(s.forward_count(), 1u);
}

TEST(MprTest, SoleReacherIsForced) {
  // 0-1-2: node 1 is the only reacher of 2 from 0.
  const auto g = graph::make_path(3);
  const auto mpr = compute_mpr_sets(g);
  EXPECT_EQ(mpr[0], (NodeSet{1}));
}

TEST(MprTest, RejectsMismatchedTable) {
  const auto g = graph::make_path(3);
  EXPECT_THROW(mpr_broadcast(g, std::vector<NodeSet>(2), 0),
               std::invalid_argument);
}

TEST(BroadcastContractTest, AllProtocolsRejectBadSource) {
  const auto g = graph::make_path(3);
  EXPECT_THROW(flood(g, 3), std::invalid_argument);
  EXPECT_THROW(si_cds_broadcast(g, {1}, 3), std::invalid_argument);
  EXPECT_THROW(dominant_pruning_broadcast(g, 3, PruningRule::kDominant),
               std::invalid_argument);
  EXPECT_THROW(mpr_broadcast(g, 3), std::invalid_argument);
}

// ---- Property sweep: delivery + redundancy ordering ---------------------

struct ZooParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const ZooParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed);
  }
};

class ProtocolZooSweep : public ::testing::TestWithParam<ZooParam> {
 protected:
  geom::UnitDiskNetwork make_network() {
    const auto [n, d, seed] = GetParam();
    Rng rng(seed);
    geom::UnitDiskConfig cfg;
    cfg.nodes = n;
    cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
    auto net = geom::generate_connected_unit_disk(cfg, rng);
    EXPECT_TRUE(net.has_value());
    return std::move(*net);
  }
};

TEST_P(ProtocolZooSweep, EveryProtocolDeliversEverywhere) {
  const auto net = make_network();
  const auto mpr = compute_mpr_sets(net.graph);
  EXPECT_EQ(validate_mpr_sets(net.graph, mpr), "");
  const auto bb = core::build_static_backbone(
      net.graph, core::CoverageMode::kTwoPointFiveHop);
  Rng pick(GetParam().seed ^ 0xabcdef);
  for (int i = 0; i < 4; ++i) {
    const auto s = static_cast<NodeId>(pick.index(net.graph.order()));
    EXPECT_TRUE(flood(net.graph, s).delivered_all);
    EXPECT_TRUE(si_cds_broadcast(net.graph, bb.cds, s).delivered_all);
    EXPECT_TRUE(
        dominant_pruning_broadcast(net.graph, s, PruningRule::kDominant)
            .delivered_all);
    EXPECT_TRUE(dominant_pruning_broadcast(net.graph, s,
                                           PruningRule::kPartialDominant)
                    .delivered_all);
    EXPECT_TRUE(mpr_broadcast(net.graph, mpr, s).delivered_all);
  }
}

TEST_P(ProtocolZooSweep, PrunedProtocolsBeatFlooding) {
  const auto net = make_network();
  const NodeId s = 0;
  const auto flood_count = flood(net.graph, s).forward_count();
  EXPECT_EQ(flood_count, net.graph.order());
  EXPECT_LE(dominant_pruning_broadcast(net.graph, s, PruningRule::kDominant)
                .forward_count(),
            flood_count);
  EXPECT_LE(mpr_broadcast(net.graph, s).forward_count(), flood_count);
}

TEST_P(ProtocolZooSweep, PdpNoWorseThanDpOnAverage) {
  // PDP's extra exclusion shrinks each hop's target set, but greedy
  // cascades can differ by a node or two on individual broadcasts — the
  // published claim (Lou & Wu 2002) is an *average* improvement, so the
  // invariant is checked on the per-topology mean over all sources.
  const auto net = make_network();
  double dp_total = 0, pdp_total = 0;
  for (NodeId s = 0; s < net.graph.order(); ++s) {
    dp_total += static_cast<double>(
        dominant_pruning_broadcast(net.graph, s, PruningRule::kDominant)
            .forward_count());
    pdp_total += static_cast<double>(
        dominant_pruning_broadcast(net.graph, s,
                                   PruningRule::kPartialDominant)
            .forward_count());
  }
  EXPECT_LE(pdp_total, dp_total * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, ProtocolZooSweep,
    ::testing::Values(ZooParam{20, 6, 61}, ZooParam{40, 6, 62},
                      ZooParam{60, 6, 63}, ZooParam{40, 18, 64},
                      ZooParam{80, 18, 65}, ZooParam{100, 6, 66},
                      ZooParam{100, 18, 67}, ZooParam{50, 12, 68}));

}  // namespace
}  // namespace manet::broadcast
