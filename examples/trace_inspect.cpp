// Query CLI over the protocol event journal (obs::Journal JSONL, as
// written by `bench/msg_maintenance --journal-out=...` or
// Journal::write_jsonl_file).
//
// The journal records every transmission of the maintenance protocol
// with its causal envelope (trace id, parent id, wave depth), so repair
// waves can be walked backward from any message to the beacon that
// started them — the same parent links the Perfetto flow arrows render.
//
// Modes:
//  * timeline (default): events grouped by engine tick, optionally
//    filtered by --node=<id> and/or --tick=<k>.
//  * --trace-id=<id>: the causal chain of that message — every retained
//    ancestor back to the wave root, oldest first.
//  * --deepest: finds the deepest wave in the journal (max causal depth)
//    and prints its chain — the go-to smoke query when no trace id is
//    known a priori (CI runs it against the bench's journal artifact).
//  * --demo: no input file needed — runs a 4-node head-merge repair
//    in-process (two clusters drift into range, rule 1 resigns the
//    larger head, its member re-affiliates) and inspects the resulting
//    journal, demonstrating a connected multi-node causal chain.
//
// Usage: trace_inspect <journal.jsonl> [--node=v] [--tick=k]
//                      [--trace-id=id | --deepest] [--limit=k]
//        trace_inspect --demo
#include <cstdio>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flags.hpp"
#include "obs/journal.hpp"
#include "obs/session.hpp"
#include "proto/engine.hpp"

namespace {

using namespace manet;

/// Parses one write_jsonl line (fixed key order) into a JournalEvent.
/// `types` interns the type strings so the events' borrowed pointers
/// stay valid for the program's lifetime.
std::optional<obs::JournalEvent> parse_line(const std::string& line,
                                            std::set<std::string>& types) {
  const auto field = [&](const char* key) -> std::optional<std::uint64_t> {
    const std::string needle = std::string("\"") + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos) return std::nullopt;
    return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  };
  const auto tick = field("tick");
  const auto round = field("round");
  const auto node = field("node");
  const auto trace = field("trace");
  const auto parent = field("parent");
  const auto depth = field("depth");
  const auto a = field("a");
  const auto b = field("b");
  const auto tpos = line.find("\"type\":\"");
  if (!tick || !round || !node || !trace || !parent || !depth || !a || !b ||
      tpos == std::string::npos)
    return std::nullopt;
  const auto tstart = tpos + 8;
  const auto tend = line.find('"', tstart);
  if (tend == std::string::npos) return std::nullopt;
  const auto& interned =
      *types.insert(line.substr(tstart, tend - tstart)).first;
  obs::JournalEvent e;
  e.tick = *tick;
  e.round = static_cast<std::uint32_t>(*round);
  e.node = static_cast<std::uint32_t>(*node);
  e.type = interned.c_str();
  e.trace_id = *trace;
  e.parent_id = *parent;
  e.depth = static_cast<std::uint32_t>(*depth);
  e.a = *a;
  e.b = *b;
  return e;
}

/// Parent-link walk result: the retained slice of a wave, oldest first.
/// When the walk hits a parent id that is no longer in the window (the
/// journal ring wrapped past it), `missing_ancestor` records that id so
/// the output can say exactly where — and why — the chain stops.
struct Chain {
  std::vector<obs::JournalEvent> events;
  std::uint64_t missing_ancestor = 0;
};

/// Parent-link walk from `trace_id` back to the wave root, oldest first.
Chain chain_of(const std::vector<obs::JournalEvent>& events,
               const std::unordered_map<std::uint64_t, std::size_t>& by_trace,
               std::uint64_t trace_id) {
  Chain chain;
  std::uint64_t cursor = trace_id;
  while (cursor != 0 && chain.events.size() <= events.size()) {
    const auto it = by_trace.find(cursor);
    if (it == by_trace.end()) {
      // Ancestor evicted by ring wrap: stop here and report it, rather
      // than pretending the retained prefix is the whole wave.
      chain.missing_ancestor = cursor;
      break;
    }
    chain.events.push_back(events[it->second]);
    cursor = events[it->second].parent_id;
  }
  std::reverse(chain.events.begin(), chain.events.end());
  return chain;
}

void print_chain(const Chain& chain) {
  if (chain.events.empty()) {
    std::puts("  (trace id not in the journal window)");
    return;
  }
  if (chain.missing_ancestor != 0)
    std::printf("  (ancestor trace %llu evicted from the journal ring — "
                "older part of the wave is lost)\n",
                static_cast<unsigned long long>(chain.missing_ancestor));
  for (std::size_t i = 0; i < chain.events.size(); ++i)
    std::printf("  %*s%s\n", static_cast<int>(2 * i), "",
                obs::Journal::format_event(chain.events[i]).c_str());
  std::printf("  wave: %zu message(s), depth %u, %s -> final sender %u\n",
              chain.events.size(), chain.events.back().depth,
              chain.events.front().parent_id == 0 ? "rooted" : "truncated",
              chain.events.back().node);
}

int inspect(const std::vector<obs::JournalEvent>& events,
            const Flags& flags) {
  if (events.empty()) {
    std::puts("journal is empty");
    return 1;
  }
  std::unordered_map<std::uint64_t, std::size_t> by_trace;
  by_trace.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    by_trace.emplace(events[i].trace_id, i);

  if (flags.has("trace-id")) {
    const auto id = static_cast<std::uint64_t>(flags.get_int("trace-id", 0));
    std::printf("causal chain of trace %llu:\n",
                static_cast<unsigned long long>(id));
    print_chain(chain_of(events, by_trace, id));
    return 0;
  }

  if (flags.get_bool("deepest")) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < events.size(); ++i)
      if (events[i].depth > events[best].depth) best = i;
    std::printf("deepest wave (depth %u, trace %llu):\n", events[best].depth,
                static_cast<unsigned long long>(events[best].trace_id));
    print_chain(chain_of(events, by_trace, events[best].trace_id));
    return 0;
  }

  // Timeline: events grouped by engine tick, filtered by node/tick.
  const bool filter_node = flags.has("node");
  const bool filter_tick = flags.has("tick");
  const auto want_node = static_cast<std::uint32_t>(flags.get_int("node", 0));
  const auto want_tick = static_cast<std::uint64_t>(flags.get_int("tick", 0));
  const auto limit =
      static_cast<std::size_t>(flags.get_int("limit", 200));
  std::uint64_t last_tick = ~std::uint64_t{0};
  std::size_t shown = 0, matched = 0;
  for (const auto& e : events) {
    if (filter_node && e.node != want_node) continue;
    if (filter_tick && e.tick != want_tick) continue;
    ++matched;
    if (shown >= limit) continue;
    if (e.tick != last_tick) {
      std::printf("--- tick %llu ---\n",
                  static_cast<unsigned long long>(e.tick));
      last_tick = e.tick;
    }
    std::printf("%s\n", obs::Journal::format_event(e).c_str());
    ++shown;
  }
  if (matched > shown)
    std::printf("... %zu more event(s) (raise --limit)\n", matched - shown);
  std::printf("%zu of %zu event(s) matched\n", matched, events.size());
  return 0;
}

/// In-process demo: the 4-node head-merge scenario. Nodes 0-1 and 2-3
/// form two clusters (heads 0 and 2); node 2 drifts into node 1's range,
/// head 2 hears head 0's beacon, resigns by rule 1, and node 3
/// re-affiliates by rule 2 — a causal chain spanning three node tracks.
int run_demo(const Flags& flags) {
  std::vector<geom::Point> pts{{0, 0}, {1, 0}, {10, 0}, {11, 0}};
  proto::EngineOptions opts;
  opts.oracle_check = true;
  obs::Session session;
  opts.obs = &session;
  proto::MaintenanceEngine engine(pts, 1.5, 20.0, 5.0, opts);
  engine.stage_move(2, {1.4, 0});
  engine.tick();

  std::vector<obs::JournalEvent> events;
  session.journal.for_each(
      [&](const obs::JournalEvent& e) { events.push_back(e); });
  std::puts("demo: 4-node head merge (node 2 drifts next to cluster 0-1)\n");
  if (events.empty() && !obs::kEnabled) {
    std::puts("observability compiled out (-DMANET_OBS=OFF) — no journal");
    return 0;
  }
  const int rc = inspect(events, flags);
  if (!events.empty() && !flags.has("trace-id") && !flags.get_bool("deepest")) {
    std::puts("\ndeepest repair wave:");
    std::size_t best = 0;
    for (std::size_t i = 1; i < events.size(); ++i)
      if (events[i].depth > events[best].depth) best = i;
    std::unordered_map<std::uint64_t, std::size_t> by_trace;
    for (std::size_t i = 0; i < events.size(); ++i)
      by_trace.emplace(events[i].trace_id, i);
    print_chain(chain_of(events, by_trace, events[best].trace_id));
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("demo")) return run_demo(flags);

  const std::string path = flags.positional_count() > 0
                               ? flags.positional(0)
                               : flags.get("journal", "");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_inspect <journal.jsonl> [--node=v] [--tick=k]"
                 " [--trace-id=id | --deepest] [--limit=k]\n"
                 "       trace_inspect --demo\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::set<std::string> types;
  std::vector<obs::JournalEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto e = parse_line(line, types)) events.push_back(*e);
  }
  return inspect(events, flags);
}
