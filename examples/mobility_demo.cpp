// Mobility demo — watch the backbone breathe as nodes move.
//
// Runs both mobility models (random waypoint and random direction) over
// the same initial deployment and prints, per time step, the link churn,
// cluster changes, backbone repair cost and one dynamic broadcast's
// forward count. The punchline is the paper's conclusion: the static
// backbone's standing state churns ~2x what the dynamic backbone needs.
//
// Run:  ./mobility_demo [--nodes=50] [--degree=8] [--speed=2.0]
//                       [--steps=12] [--seed=9] [--model=waypoint|direction]
#include <cstdio>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/dynamic_broadcast.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "mobility/maintenance.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/waypoint.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("nodes", 50));
  const double d = flags.get_double("degree", 8.0);
  const double speed = flags.get_double("speed", 2.0);
  const auto steps = static_cast<std::size_t>(flags.get_int("steps", 12));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));
  const auto model_name = flags.get("model", "waypoint");

  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  if (!net) {
    std::puts("could not generate a connected topology — raise --degree");
    return 1;
  }
  std::printf("%zu nodes, range %.1f, model %s, speed ~%.1f\n\n", n,
              cfg.range, model_name.c_str(), speed);

  // Either mobility model behind one stepping closure.
  mobility::WaypointConfig wcfg;
  wcfg.min_speed = speed * 0.5;
  wcfg.max_speed = speed;
  mobility::RandomDirectionConfig rcfg;
  rcfg.min_speed = speed * 0.5;
  rcfg.max_speed = speed;
  mobility::WaypointModel waypoint(net->positions, wcfg, Rng(seed + 1));
  mobility::RandomDirectionModel direction(net->positions, rcfg,
                                           Rng(seed + 1));
  const bool use_waypoint = model_name != "direction";

  TextTable table({"t", "links +/-", "head chg", "static cost",
                   "dynamic cost", "connected", "SD forward"});
  auto prev = net->graph;
  for (std::size_t t = 1; t <= steps; ++t) {
    graph::Graph cur;
    if (use_waypoint) {
      waypoint.step(1.0);
      cur = waypoint.snapshot(cfg.range);
    } else {
      direction.step(1.0);
      cur = direction.snapshot(cfg.range);
    }
    const auto delta = mobility::compare_snapshots(
        prev, cur, core::CoverageMode::kTwoPointFiveHop);
    const bool connected = graph::is_connected(cur);
    std::string forward = "-";
    if (connected) {
      const auto bb = core::build_dynamic_backbone(
          cur, core::CoverageMode::kTwoPointFiveHop);
      forward = std::to_string(
          core::dynamic_broadcast(cur, bb, 0).forward_count());
    }
    table.row({std::to_string(t), std::to_string(delta.link_changes),
               std::to_string(delta.head_changes),
               std::to_string(delta.static_maintenance()),
               std::to_string(delta.dynamic_maintenance()),
               connected ? "yes" : "no", forward});
    prev = cur;
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nstatic cost = clusters + gateway selections to repair;\n"
            "dynamic cost = clusters only (gateways are re-derived per "
            "broadcast).");
  return 0;
}
