// Quickstart — the 60-second tour of the public API:
//   1. generate a random connected MANET topology (unit-disk graph);
//   2. cluster it with lowest-ID and build the static SI-CDS backbone;
//   3. broadcast once over the static backbone, once over the dynamic
//      SD-CDS backbone, and compare the forward-node sets.
//
// Run:  ./quickstart [--nodes=50] [--degree=6] [--seed=7] [--mode=2.5|3]
#include <cstdio>

#include "broadcast/si_cds.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("nodes", 50));
  const double d = flags.get_double("degree", 6.0);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));
  const auto mode = flags.get("mode", "2.5") == "3"
                        ? core::CoverageMode::kThreeHop
                        : core::CoverageMode::kTwoPointFiveHop;

  // 1. Topology: n nodes in the paper's 100x100 working space, range
  //    calibrated for the requested average degree, connected or retry.
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  if (!net) {
    std::puts("could not generate a connected topology — raise --degree");
    return 1;
  }
  std::printf("topology: %zu nodes, %zu links, avg degree %.2f, range %.2f\n",
              net->graph.order(), net->graph.edge_count(),
              net->graph.average_degree(), cfg.range);

  // 2. Static backbone: clusterheads + source-independent gateways.
  const auto backbone = core::build_static_backbone(net->graph, mode);
  std::printf("clusters: %zu heads; static %s backbone (SI-CDS): %zu nodes\n",
              backbone.clustering.heads.size(), core::to_string(mode),
              backbone.cds.size());

  // 3. One broadcast each way, from node 0.
  const auto si = broadcast::si_cds_broadcast(net->graph, backbone.cds, 0);
  const auto dyn_bb =
      core::build_dynamic_backbone(net->graph, backbone.clustering, mode);
  const auto sd = core::dynamic_broadcast(net->graph, dyn_bb, 0);

  std::printf("broadcast from node 0:\n");
  std::printf("  static  SI-CDS : %3zu forward nodes, delivery %s\n",
              si.forward_count(), si.delivered_all ? "100%" : "INCOMPLETE");
  std::printf("  dynamic SD-CDS : %3zu forward nodes, delivery %s\n",
              sd.forward_count(),
              sd.delivered_all ? "100%" : "INCOMPLETE");
  std::printf("  blind flooding would use %zu forward nodes\n",
              net->graph.order());
  return 0;
}
