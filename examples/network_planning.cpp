// Network planning — using the library as a deployment design tool.
//
// Given an area, a node count and a transmission-range budget, report the
// structures a cluster-based deployment would run on: connectivity odds,
// cluster count, backbone size, broadcast cost, and the maintenance churn
// to expect at a given node speed. Sweeps the transmission range so an
// operator can pick the smallest radio power that still meets targets.
//
// Run:  ./network_planning [--nodes=60] [--width=100] [--height=100]
//                          [--speed=1.0] [--seed=5] [--reps=25]
#include <cstdio>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "mobility/maintenance.hpp"
#include "mobility/waypoint.hpp"
#include "stats/running.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("nodes", 60));
  const double width = flags.get_double("width", 100.0);
  const double height = flags.get_double("height", 100.0);
  const double speed = flags.get_double("speed", 1.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 25));

  std::printf("network planning: %zu nodes in %.0fx%.0f, node speed %.1f\n\n",
              n, width, height, speed);

  TextTable table({"range", "connected", "clusters", "backbone", "bcast fwd",
                   "churn/step"});
  for (double factor : {0.8, 1.0, 1.25, 1.5, 2.0}) {
    const double base =
        geom::range_for_average_degree(6.0, n, width, height);
    const double range = base * factor;
    std::size_t connected = 0;
    stats::RunningStats clusters, backbone, fwd, churn;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng(derive_seed(seed, rep, static_cast<std::uint64_t>(factor * 8)));
      geom::UnitDiskConfig cfg{width, height, n, range};
      const auto net = geom::generate_unit_disk(cfg, rng);
      if (!graph::is_connected(net.graph)) continue;
      ++connected;
      const auto st = core::build_static_backbone(
          net.graph, core::CoverageMode::kTwoPointFiveHop);
      clusters.add(static_cast<double>(st.clustering.heads.size()));
      backbone.add(static_cast<double>(st.cds.size()));
      const auto bb = core::build_dynamic_backbone(
          net.graph, st.clustering, core::CoverageMode::kTwoPointFiveHop);
      fwd.add(static_cast<double>(
          core::dynamic_broadcast(net.graph, bb, 0).forward_count()));

      // One mobility step of churn at the requested speed.
      mobility::WaypointConfig wcfg;
      wcfg.min_speed = std::max(0.1, speed * 0.5);
      wcfg.max_speed = std::max(wcfg.min_speed, speed);
      wcfg.width = width;
      wcfg.height = height;
      mobility::WaypointModel model(net.positions, wcfg,
                                    Rng(derive_seed(seed, rep, 17)));
      model.step(1.0);
      churn.add(static_cast<double>(
          mobility::compare_snapshots(net.graph, model.snapshot(range),
                                      core::CoverageMode::kTwoPointFiveHop)
              .dynamic_maintenance()));
    }
    const double conn_pct =
        100.0 * static_cast<double>(connected) / static_cast<double>(reps);
    table.row({TextTable::num(range, 1), TextTable::num(conn_pct, 0) + "%",
               connected ? TextTable::num(clusters.mean(), 1) : "-",
               connected ? TextTable::num(backbone.mean(), 1) : "-",
               connected ? TextTable::num(fwd.mean(), 1) : "-",
               connected ? TextTable::num(churn.mean(), 1) : "-"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nPick the smallest range with acceptable connectivity — the "
            "backbone absorbs the extra density of larger ranges.");
  return 0;
}
