// Distributed protocol trace — watch the paper's §3 construction happen
// message by message on the Figure 3 network (or a random one).
//
// Prints every transmission of the synchronous-round simulation: HELLO,
// CLUSTER_HEAD / NON_CLUSTER_HEAD, CH_HOP1, CH_HOP2 and the TTL-scoped
// GATEWAY flood, then the resulting clusters and backbone.
//
// Run:  ./distributed_trace            (paper Figure 3 network)
//       ./distributed_trace --random --nodes=20 --degree=6 --seed=3
//       ./distributed_trace --trace-out=trace.json   (Chrome-trace
//       export of the whole exchange — open in Perfetto; one track per
//       node, one millisecond per round)
#include <cstdio>
#include <sstream>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "geom/unit_disk.hpp"
#include "net/protocol.hpp"
#include "obs/session.hpp"

using namespace manet;

namespace {

graph::Graph paper_network() {
  return graph::make_graph(10, {
      {0, 4}, {0, 5}, {0, 6}, {1, 5}, {1, 7}, {2, 6}, {2, 7}, {2, 8},
      {2, 9}, {3, 8}, {3, 9}, {4, 8},
  });
}

std::string set_to_string(const NodeSet& s) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < s.size(); ++i) os << (i ? "," : "") << s[i];
  os << '}';
  return os.str();
}

std::string describe(const net::Message& m) {
  std::ostringstream os;
  if (std::holds_alternative<net::HelloMsg>(m.body)) {
    os << "HELLO";
  } else if (std::holds_alternative<net::ClusterHeadMsg>(m.body)) {
    os << "CLUSTER_HEAD";
  } else if (const auto* nch = std::get_if<net::NonClusterHeadMsg>(&m.body)) {
    os << "NON_CLUSTER_HEAD(head=" << nch->head << ")";
  } else if (const auto* h1 = std::get_if<net::ChHop1Msg>(&m.body)) {
    os << "CH_HOP1" << set_to_string(h1->heads);
  } else if (const auto* h2 = std::get_if<net::ChHop2Msg>(&m.body)) {
    os << "CH_HOP2{";
    for (std::size_t i = 0; i < h2->entries.size(); ++i)
      os << (i ? "," : "") << h2->entries[i].head << "["
         << h2->entries[i].via << "]";
    os << '}';
  } else if (const auto* gw = std::get_if<net::GatewayMsg>(&m.body)) {
    os << "GATEWAY(origin=" << gw->origin
       << ", selected=" << set_to_string(gw->selected)
       << ", ttl=" << static_cast<int>(gw->ttl) << ")";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto mode = flags.get("mode", "2.5") == "3"
                        ? core::CoverageMode::kThreeHop
                        : core::CoverageMode::kTwoPointFiveHop;

  graph::Graph g;
  if (flags.get_bool("random")) {
    const auto n = static_cast<std::size_t>(flags.get_int("nodes", 20));
    const double d = flags.get_double("degree", 6.0);
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 3)));
    geom::UnitDiskConfig cfg;
    cfg.nodes = n;
    cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
    const auto net = geom::generate_connected_unit_disk(cfg, rng);
    if (!net) {
      std::puts("could not generate a connected topology");
      return 1;
    }
    g = net->graph;
    std::printf("random topology: %zu nodes, %zu links\n\n", g.order(),
                g.edge_count());
  } else {
    g = paper_network();
    std::puts("paper Figure 3 network (0-indexed: our node k = paper k+1)\n");
  }

  net::Simulator sim(g, [mode](NodeId v) {
    return std::make_unique<net::BackboneNode>(v, mode);
  });
  sim.set_observer([](std::uint32_t round, const net::Message& m) {
    std::printf("  [round %2u] node %2u -> %s\n", round, m.from,
                describe(m).c_str());
  });
  const std::string trace_path = flags.get("trace-out", "");
  obs::Session session;
  if (!trace_path.empty()) sim.set_obs(&session);
  const auto rounds = sim.run();

  std::printf("\nquiescent after %u rounds, %zu messages total\n", rounds,
              sim.counts().total());
  NodeSet heads, backbone;
  for (NodeId v = 0; v < g.order(); ++v) {
    const auto& node = dynamic_cast<const net::BackboneNode&>(sim.process(v));
    if (node.is_head()) heads.push_back(v);
    if (node.in_backbone()) backbone.push_back(v);
  }
  std::printf("clusterheads: %s\n", set_to_string(heads).c_str());
  for (NodeId h : heads) {
    const auto& node = dynamic_cast<const net::BackboneNode&>(sim.process(h));
    std::printf("  head %u: coverage C2=%s C3=%s, gateways %s\n", h,
                set_to_string(node.coverage().two_hop).c_str(),
                set_to_string(node.coverage().three_hop).c_str(),
                set_to_string(node.selection().gateways).c_str());
  }
  std::printf("backbone (SI-CDS): %s\n", set_to_string(backbone).c_str());
  if (!trace_path.empty()) {
    session.trace.write_chrome_trace_file(trace_path, &session.journal);
    std::printf("chrome trace written to %s (open in Perfetto)\n",
                trace_path.c_str());
  }
  return 0;
}
