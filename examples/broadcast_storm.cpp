// Broadcast storm demo — the scenario that motivates the paper (§1).
//
// As density grows, blind flooding keeps every node transmitting while
// backbone-based broadcasting holds the forward set nearly flat. This
// example sweeps the average degree on a fixed population and prints the
// redundancy (transmissions that deliver no first copy) of each scheme —
// the quantity that causes the collision/contention collapse Ni et al.
// described.
//
// Run:  ./broadcast_storm [--nodes=80] [--seed=11] [--reps=20]
#include <cstdio>

#include "broadcast/flooding.hpp"
#include "broadcast/si_cds.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "stats/running.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("nodes", 80));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 20));

  std::printf("broadcast storm demo: %zu nodes, degree sweep, %zu "
              "replications per point\n\n",
              n, reps);
  TextTable table({"avg degree", "flood fwd", "static fwd", "dynamic fwd",
                   "flood redundancy", "dynamic redundancy"});

  for (double d : {4.0, 6.0, 10.0, 14.0, 18.0, 24.0}) {
    stats::RunningStats flood_fwd, static_fwd, dyn_fwd;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng(derive_seed(seed, rep, static_cast<std::uint64_t>(d)));
      geom::UnitDiskConfig cfg;
      cfg.nodes = n;
      cfg.range =
          geom::range_for_average_degree(d, n, cfg.width, cfg.height);
      const auto net = geom::generate_connected_unit_disk(cfg, rng);
      if (!net) continue;  // sparse configs occasionally fail; skip
      const auto source = static_cast<NodeId>(rng.index(n));
      flood_fwd.add(static_cast<double>(
          broadcast::flood(net->graph, source).forward_count()));
      const auto st = core::build_static_backbone(
          net->graph, core::CoverageMode::kTwoPointFiveHop);
      static_fwd.add(static_cast<double>(
          broadcast::si_cds_broadcast(net->graph, st.cds, source)
              .forward_count()));
      const auto bb = core::build_dynamic_backbone(
          net->graph, st.clustering, core::CoverageMode::kTwoPointFiveHop);
      dyn_fwd.add(static_cast<double>(
          core::dynamic_broadcast(net->graph, bb, source).forward_count()));
    }
    if (flood_fwd.count() == 0) continue;
    // Redundancy: n-1 first deliveries suffice; everything beyond one
    // transmission per delivery is overhead.
    const auto nd = static_cast<double>(n);
    const double flood_red = 100.0 * (flood_fwd.mean() - 1) / (nd - 1);
    const double dyn_red = 100.0 * (dyn_fwd.mean() - 1) / (nd - 1);
    table.row({TextTable::num(d, 0), TextTable::num(flood_fwd.mean(), 1),
               TextTable::num(static_fwd.mean(), 1),
               TextTable::num(dyn_fwd.mean(), 1),
               TextTable::num(flood_red, 0) + "%",
               TextTable::num(dyn_red, 0) + "%"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nFlooding keeps ~100% of nodes transmitting regardless of "
            "density;\nthe cluster backbone converts density into savings.");
  return 0;
}
